//! Group commit: coalesce concurrent durable appends into one flush.
//!
//! The serve daemon's ack-implies-durable contract costs one `fsync`
//! per ingest when every session flushes its own record. [`GroupCommit`]
//! amortizes that: sessions enqueue records into a shared queue and
//! then wait for the covering flush. The first waiter to find no flush
//! in progress becomes the **leader** — it takes a bounded prefix of
//! the queue, runs the flush closure *outside* the lock, and wakes
//! everyone; the rest are **followers** who sleep on the condvar until
//! the durable watermark passes their ticket. Latency needs no timer:
//! while any waiter exists a leader exists, so a record waits at most
//! one in-flight flush before its own batch starts.
//!
//! Ordering: tickets are handed out in enqueue order and the leader
//! always flushes a *prefix* of the queue, so the flushed stream is
//! exactly the enqueue stream — a property the WAL replay relies on.
//!
//! Failure posture: a failed flush **poisons the batcher permanently**
//! (every current and future waiter gets the error). That is deliberate
//! for a write-ahead log: after a failed flush the file tail is
//! unknown, and the only honest answer to "is my record durable?" is
//! to refuse until the operator restarts and recovery re-derives the
//! valid prefix.

use std::collections::VecDeque;
use std::sync::Condvar;

use crate::sync::Mutex;

/// Counters for the stats endpoint: how well coalescing is working.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Flushes performed.
    pub batches: u64,
    /// Records flushed across all batches.
    pub records: u64,
    /// Largest single batch.
    pub max_batch: u64,
}

#[derive(Debug)]
struct State<T> {
    /// Enqueued but not yet flushed records, with their byte cost.
    pending: VecDeque<(T, usize)>,
    /// Tickets handed out (== records ever enqueued).
    enqueued: u64,
    /// Records durably flushed (a prefix of the ticket sequence).
    durable: u64,
    /// A leader is inside the flush closure.
    flushing: bool,
    /// First flush error; permanent once set.
    failed: Option<String>,
    stats: BatchStats,
}

/// A leader/follower batcher: many enqueuers, one flush at a time,
/// every waiter released only when the flush covering its ticket lands.
#[derive(Debug)]
pub struct GroupCommit<T> {
    shared: Mutex<State<T>>,
    flushed: Condvar,
    /// Bounds on one batch. A batch always contains at least one record
    /// regardless of its size, so an oversized record still flushes.
    max_records: usize,
    max_bytes: usize,
}

impl<T> GroupCommit<T> {
    pub fn new(max_records: usize, max_bytes: usize) -> Self {
        Self {
            shared: Mutex::new(State {
                pending: VecDeque::new(),
                enqueued: 0,
                durable: 0,
                flushing: false,
                failed: None,
                stats: BatchStats::default(),
            }),
            flushed: Condvar::new(),
            max_records: max_records.max(1),
            max_bytes: max_bytes.max(1),
        }
    }

    /// Queue one record and return its ticket. Never blocks — safe to
    /// call while holding an unrelated lock (the serve daemon enqueues
    /// under the store lock so the log order matches the apply order).
    pub fn enqueue(&self, item: T, cost: usize) -> u64 {
        let mut st = self.shared.lock();
        st.pending.push_back((item, cost));
        st.enqueued += 1;
        st.enqueued
    }

    /// Block until every record up to `ticket` has been flushed, leading
    /// a flush if nobody else is. `flush` receives a batch in enqueue
    /// order and must make it durable before returning Ok.
    pub fn commit<F>(&self, ticket: u64, mut flush: F) -> Result<(), String>
    where
        F: FnMut(Vec<T>) -> Result<(), String>,
    {
        let mut st = self.shared.lock();
        loop {
            if let Some(e) = &st.failed {
                return Err(e.clone());
            }
            if st.durable >= ticket {
                return Ok(());
            }
            if !st.flushing && !st.pending.is_empty() {
                // Become the leader: take a bounded prefix and flush it
                // outside the lock so enqueuers are never blocked on IO.
                st.flushing = true;
                let mut batch = Vec::new();
                let mut bytes = 0usize;
                while let Some((_, cost)) = st.pending.front() {
                    if !batch.is_empty()
                        && (batch.len() >= self.max_records || bytes + cost > self.max_bytes)
                    {
                        break;
                    }
                    let (item, cost) = st.pending.pop_front().expect("non-empty front");
                    bytes += cost;
                    batch.push(item);
                }
                let n = batch.len() as u64;
                drop(st);
                let outcome = flush(batch);
                st = self.shared.lock();
                st.flushing = false;
                match outcome {
                    Ok(()) => {
                        st.durable += n;
                        st.stats.batches += 1;
                        st.stats.records += n;
                        st.stats.max_batch = st.stats.max_batch.max(n);
                    }
                    Err(e) => st.failed = Some(e),
                }
                self.flushed.notify_all();
            } else {
                st = self
                    .flushed
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }

    /// Flush everything currently enqueued (a snapshot barrier: the WAL
    /// must be fully on disk before it can be truncated).
    pub fn drain<F>(&self, flush: F) -> Result<(), String>
    where
        F: FnMut(Vec<T>) -> Result<(), String>,
    {
        let ticket = self.shared.lock().enqueued;
        self.commit(ticket, flush)
    }

    /// Coalescing counters so far.
    pub fn stats(&self) -> BatchStats {
        self.shared.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_thread_flushes_in_enqueue_order() {
        let gc = GroupCommit::new(16, 1 << 20);
        let flushed = Mutex::new(Vec::new());
        for i in 0..5u64 {
            let t = gc.enqueue(i, 1);
            assert_eq!(t, i + 1);
            gc.commit(t, |batch| {
                flushed.lock().extend(batch);
                Ok(())
            })
            .expect("commit");
        }
        assert_eq!(*flushed.lock(), vec![0, 1, 2, 3, 4]);
        let stats = gc.stats();
        assert_eq!(stats.records, 5);
        assert_eq!(stats.batches, 5, "no concurrency, no coalescing");
    }

    #[test]
    fn batch_bounds_are_respected_and_prefix_order_holds() {
        let gc = GroupCommit::new(3, usize::MAX);
        for i in 0..10u64 {
            gc.enqueue(i, 1);
        }
        let batches = Mutex::new(Vec::new());
        gc.drain(|batch| {
            batches.lock().push(batch);
            Ok(())
        })
        .expect("drain");
        let batches = batches.into_inner();
        assert!(batches.iter().all(|b| b.len() <= 3), "record bound holds");
        let flat: Vec<u64> = batches.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>(), "prefix order");
    }

    #[test]
    fn byte_bound_splits_but_oversized_record_still_flushes() {
        let gc = GroupCommit::new(usize::MAX, 10);
        gc.enqueue("big", 100); // alone it exceeds the bound: flushes solo
        gc.enqueue("a", 4);
        gc.enqueue("b", 4);
        gc.enqueue("c", 4); // would push the batch past 10 bytes
        let batches = Mutex::new(Vec::new());
        gc.drain(|batch| {
            batches.lock().push(batch.len());
            Ok(())
        })
        .expect("drain");
        assert_eq!(*batches.lock(), vec![1, 2, 1]);
    }

    #[test]
    fn concurrent_commits_coalesce_and_all_become_durable() {
        let gc = Arc::new(GroupCommit::new(64, 1 << 20));
        let flushed = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let gc = Arc::clone(&gc);
                let flushed = Arc::clone(&flushed);
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        let t = gc.enqueue(i, 8);
                        gc.commit(t, |batch| {
                            // A slow flush forces queue build-up, so
                            // coalescing happens even on one core.
                            std::thread::sleep(std::time::Duration::from_micros(200));
                            flushed.fetch_add(batch.len() as u64, Ordering::SeqCst);
                            Ok(())
                        })
                        .expect("commit");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("join");
        }
        let stats = gc.stats();
        assert_eq!(flushed.load(Ordering::SeqCst), 200, "every record flushed once");
        assert_eq!(stats.records, 200);
        assert!(
            stats.batches < stats.records,
            "contended commits must coalesce: {} batches for {} records",
            stats.batches,
            stats.records
        );
        assert!(stats.max_batch > 1);
    }

    #[test]
    fn flush_failure_poisons_current_and_future_waiters() {
        let gc = GroupCommit::new(16, 1 << 20);
        let t = gc.enqueue(1u64, 1);
        let err = gc.commit(t, |_| Err("disk on fire".to_string())).expect_err("fails");
        assert_eq!(err, "disk on fire");
        // The failure is permanent: later commits refuse immediately,
        // even with a flush that would succeed.
        let t2 = gc.enqueue(2u64, 1);
        let err2 = gc.commit(t2, |_| Ok(())).expect_err("still failed");
        assert_eq!(err2, "disk on fire");
    }

    #[test]
    fn drain_is_a_noop_on_an_empty_queue() {
        let gc: GroupCommit<u64> = GroupCommit::new(16, 1 << 20);
        gc.drain(|_| panic!("nothing to flush")).expect("empty drain");
        assert_eq!(gc.stats(), BatchStats::default());
    }
}
