//! The daemon: a TCP accept loop feeding a bounded session pool.
//!
//! Sessions run on dedicated OS threads — deliberately NOT on the
//! fork-join compute pool. A session blocks on socket reads; parking it
//! on a work-helping pool worker would starve compute (and deadlock
//! outright under `DCP_THREADS=0`, which has no workers at all). The
//! compute pool still does what it is for: `merge_encoded` inside a
//! snapshot fold parallelises across blobs exactly as it does offline.
//!
//! Robustness posture per connection: a read timeout bounds how long a
//! quiet peer can hold a session thread, `MAX_FRAME` bounds allocation,
//! and every decode failure turns into one best-effort ERR frame before
//! the connection closes. A SHUTDOWN control frame flips the drain
//! flag: the acceptor stops taking sockets, in-flight sessions finish
//! their current request, and `serve()` joins every worker before
//! returning — no request is abandoned mid-response.

use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dcp_core::stored::decode_bundle;

use crate::error::ServeError;
use crate::query::handle_query;
use crate::store::{ProfileStore, StoreConfig};
use crate::wire::{encode_response, read_frame, write_frame, Request, Response, MAX_FRAME};

/// Everything tunable about a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Store byte budget (see [`StoreConfig`]).
    pub byte_budget: u64,
    /// Largest frame body accepted.
    pub max_frame: u64,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Concurrent session threads.
    pub sessions: usize,
    /// Response-cache bounds.
    pub cache_entries: usize,
    pub cache_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let store = StoreConfig::default();
        Self {
            addr: "127.0.0.1:0".to_string(),
            byte_budget: store.byte_budget,
            max_frame: MAX_FRAME,
            read_timeout: Duration::from_secs(10),
            sessions: 4,
            cache_entries: store.cache_entries,
            cache_bytes: store.cache_bytes,
        }
    }
}

/// A bound, not-yet-serving daemon. `bind` then `local_addr` then
/// `serve` (which blocks until a SHUTDOWN frame arrives).
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    store: Arc<Mutex<ProfileStore>>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    pub fn bind(config: ServerConfig) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let store = ProfileStore::new(StoreConfig {
            byte_budget: config.byte_budget,
            cache_entries: config.cache_entries,
            cache_bytes: config.cache_bytes,
        });
        Ok(Self {
            listener,
            config,
            store: Arc::new(Mutex::new(store)),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<String, ServeError> {
        Ok(self.listener.local_addr()?.to_string())
    }

    /// A handle that flips the drain flag from another thread (tests
    /// and embedders; remote clients use the SHUTDOWN frame).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Accept and serve until shutdown, then drain. Blocks the calling
    /// thread for the daemon's whole life.
    pub fn serve(self) -> Result<(), ServeError> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.config.sessions.max(1));
        for _ in 0..self.config.sessions.max(1) {
            let rx = Arc::clone(&rx);
            let store = Arc::clone(&self.store);
            let shutdown = Arc::clone(&self.shutdown);
            let timeout = self.config.read_timeout;
            let max_frame = self.config.max_frame;
            workers.push(std::thread::spawn(move || loop {
                // Holding the receiver lock only while waiting keeps the
                // other session threads free to pull their own sockets.
                let next = {
                    let guard = rx.lock().expect("session queue poisoned");
                    guard.recv()
                };
                match next {
                    Ok(stream) => handle_conn(stream, &store, &shutdown, timeout, max_frame),
                    Err(_) => return, // sender dropped: drain complete
                }
            }));
        }
        // Nonblocking accept poll so the drain flag is honoured even
        // when no client ever connects again.
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Dropping the sender ends every worker's recv loop once the
        // queued sockets (in-flight sessions) are fully served.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

fn respond(stream: &mut TcpStream, resp: &Response) -> Result<(), ServeError> {
    let (k, body) = encode_response(resp);
    write_frame(stream, k, &body)
}

fn err_response(e: &ServeError) -> Response {
    Response::Err(e.code(), e.to_string())
}

/// Serve one connection until clean EOF, protocol error, or shutdown.
fn handle_conn(
    mut stream: TcpStream,
    store: &Arc<Mutex<ProfileStore>>,
    shutdown: &Arc<AtomicBool>,
    timeout: Duration,
    max_frame: u64,
) {
    // The listener is nonblocking for the shutdown poll; make sure the
    // accepted socket is not (inheritance is platform-dependent). No
    // Nagle: responses are single frames and latency is the product.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    loop {
        let frame = match read_frame(&mut stream, max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean EOF at a frame boundary
            Err(e) => {
                // Best effort: the peer may already be gone.
                let _ = respond(&mut stream, &err_response(&e));
                return;
            }
        };
        let req = match parse(frame) {
            Ok(r) => r,
            Err(e) => {
                let _ = respond(&mut stream, &err_response(&e));
                // An unparseable frame means we may have lost framing
                // sync; do not trust the rest of the stream.
                return;
            }
        };
        let draining = shutdown.load(Ordering::SeqCst);
        let resp = match req {
            Request::Ping => Response::Ok("pong".to_string()),
            Request::Stats => {
                let start = Instant::now();
                let mut st = store.lock().expect("store poisoned");
                let text = st.stats_text();
                st.record("stats", start.elapsed().as_micros() as u64);
                Response::Ok(text)
            }
            Request::Query(q) => {
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let mut st = store.lock().expect("store poisoned");
                    let out = handle_query(&mut st, &q);
                    st.record("query", start.elapsed().as_micros() as u64);
                    match out {
                        Ok(text) => Response::Ok(text),
                        Err(e) => err_response(&e),
                    }
                }
            }
            Request::Ingest { set, seq, bundle } => {
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let wire_len = bundle.len() as u64;
                    // Decode (full validation) outside the store lock so
                    // a big bundle never stalls concurrent queries.
                    match decode_bundle(bundle) {
                        Err(e) => err_response(&ServeError::Codec(e)),
                        Ok(b) => {
                            let mut st = store.lock().expect("store poisoned");
                            let out = st.ingest(&set, seq, wire_len, b);
                            st.record("ingest", start.elapsed().as_micros() as u64);
                            match out {
                                Ok((seq, epoch)) => Response::Ok(format!(
                                    "ingested set={set} seq={seq} epoch={epoch}"
                                )),
                                Err(e) => err_response(&e),
                            }
                        }
                    }
                }
            }
            Request::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                let _ = respond(&mut stream, &Response::Ok("draining".to_string()));
                return;
            }
        };
        if respond(&mut stream, &resp).is_err() {
            return;
        }
    }
}

fn parse((k, body): (u8, dcp_support::bytes::Bytes)) -> Result<Request, ServeError> {
    crate::wire::parse_request(k, body)
}
