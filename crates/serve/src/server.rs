//! The daemon: a TCP accept loop feeding a bounded session pool.
//!
//! Sessions run on dedicated OS threads — deliberately NOT on the
//! fork-join compute pool. A session blocks on socket reads; parking it
//! on a work-helping pool worker would starve compute (and deadlock
//! outright under `DCP_THREADS=0`, which has no workers at all). The
//! compute pool still does what it is for: `merge_encoded` inside a
//! snapshot fold parallelises across blobs exactly as it does offline.
//!
//! Robustness posture per connection: a read timeout bounds how long a
//! quiet peer can hold a session thread, `MAX_FRAME` bounds allocation,
//! and every decode failure turns into one best-effort ERR frame before
//! the connection closes. The shared state sits behind a
//! poison-recovering [`dcp_support::sync::Mutex`]: a panicking session
//! must not take the whole daemon down with it (with a poisoning lock,
//! every later session dies on the poison while the accept loop keeps
//! queueing sockets nobody will drain — the loopback regression test
//! pins the recovery). A SHUTDOWN control frame flips the drain flag:
//! the acceptor stops taking sockets, in-flight sessions finish their
//! current request, and `serve()` joins every worker before returning —
//! no request is abandoned mid-response.
//!
//! With a data directory configured, ingests are durable and the fsync
//! cost is amortized by **group commit**: a session decodes its bundles
//! outside the state lock, then under one short critical section
//! validates each one, enqueues its record into the shared WAL batcher
//! ([`crate::wal::WalShared`]), and applies the delta; the ack is
//! written only after the flush covering the record lands, which keeps
//! ack-implies-durable exact while one `write+fsync` covers every
//! record concurrent sessions enqueued. Sessions also batch at the
//! socket: when a windowed client has pipelined more INGEST frames,
//! they are drained, decoded, and committed as one group, so the lock
//! is taken once and the fsync once for the whole window. Setting
//! [`ServerConfig::group_commit`] to false restores the strict
//! one-fsync-per-record ordering (append+fsync under the lock before
//! apply) — the measured baseline in `serve_bench`'s durable phase.

use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dcp_core::stored::{decode_bundle, StoredBundle};
use dcp_support::bytes::Bytes;
use dcp_support::sync::Mutex;

use crate::error::ServeError;
use crate::query::handle_query;
use crate::store::{ProfileStore, StoreConfig};
use crate::wal::{Durability, WalRecord, WalShared};
use crate::wire::{
    encode_response, format_ingest_ack, read_frame, write_frame, Request, Response, MAX_FRAME,
};

/// Cap on the bytes one session gathers into a single ingest group from
/// its socket read-ahead (the record count is bounded by
/// [`ServerConfig::ingest_group`]).
const GROUP_READ_BYTES: usize = 8 << 20;

/// Everything tunable about a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Store byte budget (see [`StoreConfig`]).
    pub byte_budget: u64,
    /// Per-set reorder-buffer byte cap (see [`StoreConfig`]).
    pub pending_cap: u64,
    /// Largest frame body accepted.
    pub max_frame: u64,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Concurrent session threads.
    pub sessions: usize,
    /// Response-cache bounds.
    pub cache_entries: usize,
    pub cache_bytes: usize,
    /// Durable state directory. `None` serves from memory only.
    pub data_dir: Option<PathBuf>,
    /// Snapshot-and-truncate the log every N ingests (0 = only on
    /// clean shutdown). Ignored without a data directory.
    pub snapshot_every: u64,
    /// Coalesce concurrent WAL appends into one fsync (group commit).
    /// False restores the one-fsync-per-record baseline. Ignored
    /// without a data directory.
    pub group_commit: bool,
    /// Most INGEST frames one session drains from its socket into a
    /// single decode+commit group (a windowed client's pipelined
    /// pushes). 1 disables socket batching.
    pub ingest_group: usize,
    /// Serve snapshots/partials through the incremental read path (see
    /// [`StoreConfig::incremental_read`]). False restores the
    /// deep-clone/re-encode baseline — byte-identical output, old cost;
    /// the measured baseline in `serve_bench`'s interleaved phase.
    pub incremental_read: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let store = StoreConfig::default();
        Self {
            addr: "127.0.0.1:0".to_string(),
            byte_budget: store.byte_budget,
            pending_cap: store.pending_cap,
            max_frame: MAX_FRAME,
            read_timeout: Duration::from_secs(10),
            sessions: 4,
            cache_entries: store.cache_entries,
            cache_bytes: store.cache_bytes,
            data_dir: None,
            snapshot_every: 0,
            group_commit: true,
            ingest_group: 64,
            incremental_read: true,
        }
    }
}

/// The state every session shares under one lock: the store and, when
/// durability is on, the open log. One lock for both because the WAL
/// append order must match the store apply order exactly.
pub struct ServerState {
    pub store: ProfileStore,
    durability: Option<Durability>,
}

/// A bound, not-yet-serving daemon. `bind` then `local_addr` then
/// `serve` (which blocks until a SHUTDOWN frame arrives).
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    state: Arc<Mutex<ServerState>>,
    /// The shared WAL handle sessions group-commit through; `None` when
    /// serving from memory or when `group_commit` is off.
    wal: Option<Arc<WalShared>>,
    recovery: Option<String>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listener and, with a data directory configured, recover
    /// the store from snapshot + log before serving anything.
    pub fn bind(config: ServerConfig) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let mut store = ProfileStore::new(StoreConfig {
            byte_budget: config.byte_budget,
            pending_cap: config.pending_cap,
            cache_entries: config.cache_entries,
            cache_bytes: config.cache_bytes,
            incremental_read: config.incremental_read,
        });
        let mut recovery = None;
        let durability = match &config.data_dir {
            None => None,
            Some(dir) => {
                let (dur, report) = Durability::open(dir, config.snapshot_every, &mut store)?;
                recovery = Some(report.render());
                Some(dur)
            }
        };
        let wal = match &durability {
            Some(dur) if config.group_commit => Some(dur.wal()),
            _ => None,
        };
        Ok(Self {
            listener,
            config,
            state: Arc::new(Mutex::new(ServerState { store, durability })),
            wal,
            recovery,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<String, ServeError> {
        Ok(self.listener.local_addr()?.to_string())
    }

    /// What recovery found at bind time, when durability is on.
    pub fn recovery_report(&self) -> Option<&str> {
        self.recovery.as_deref()
    }

    /// A handle that flips the drain flag from another thread (tests
    /// and embedders; remote clients use the SHUTDOWN frame).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The shared state, for embedders and fault-injection tests.
    pub fn state_handle(&self) -> Arc<Mutex<ServerState>> {
        Arc::clone(&self.state)
    }

    /// Accept and serve until shutdown, then drain. Blocks the calling
    /// thread for the daemon's whole life.
    pub fn serve(self) -> Result<(), ServeError> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.config.sessions.max(1));
        for _ in 0..self.config.sessions.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let wal = self.wal.clone();
            let shutdown = Arc::clone(&self.shutdown);
            let timeout = self.config.read_timeout;
            let max_frame = self.config.max_frame;
            let ingest_group = self.config.ingest_group.max(1);
            workers.push(std::thread::spawn(move || loop {
                // Holding the receiver lock only while waiting keeps the
                // other session threads free to pull their own sockets.
                let next = {
                    let guard = rx.lock();
                    guard.recv()
                };
                match next {
                    Ok(stream) => {
                        handle_conn(stream, &state, &wal, &shutdown, timeout, max_frame, ingest_group)
                    }
                    Err(_) => return, // sender dropped: drain complete
                }
            }));
        }
        // Nonblocking accept poll so the drain flag is honoured even
        // when no client ever connects again.
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Dropping the sender ends every worker's recv loop once the
        // queued sockets (in-flight sessions) are fully served.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        // Clean shutdown: fold the store into a snapshot so the next
        // start replays nothing. Best effort — the log already has
        // everything, so a failure here costs restart time, not data.
        let mut st = self.state.lock();
        let ServerState { store, durability } = &mut *st;
        if let Some(dur) = durability {
            if let Err(e) = dur.snapshot_now(store) {
                eprintln!("memgaze-serve: shutdown snapshot failed: {e}");
            }
        }
        Ok(())
    }
}

fn respond(stream: &mut TcpStream, resp: &Response) -> Result<(), ServeError> {
    let (k, body) = encode_response(resp);
    write_frame(stream, k, &body)
}

fn err_response(e: &ServeError) -> Response {
    Response::Err(e.code(), e.to_string())
}

/// What interrupted a session's ingest read-ahead: the next frame was
/// not an ingest (serve it on the next loop turn), the stream hit EOF,
/// or reading/parsing failed.
enum Followup {
    None,
    Eof,
    Request(Request),
    Error(ServeError),
}

/// Does the socket have bytes ready to read right now? Used by the
/// ingest read-ahead: never block waiting for more of a window, only
/// drain what the client has already pipelined.
fn socket_has_data(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let ready = matches!(stream.peek(&mut probe), Ok(n) if n > 0);
    // A socket stuck nonblocking would break the normal read path;
    // treat failure to restore as no-data so the caller falls back to
    // the blocking read and surfaces the error there.
    if stream.set_nonblocking(false).is_err() {
        return false;
    }
    ready
}

/// Serve one connection until clean EOF, protocol error, or shutdown.
fn handle_conn(
    mut stream: TcpStream,
    state: &Arc<Mutex<ServerState>>,
    wal: &Option<Arc<WalShared>>,
    shutdown: &Arc<AtomicBool>,
    timeout: Duration,
    max_frame: u64,
    ingest_group: usize,
) {
    // The listener is nonblocking for the shutdown poll; make sure the
    // accepted socket is not (inheritance is platform-dependent). No
    // Nagle: responses are single frames and latency is the product.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    // A non-ingest frame found by the ingest read-ahead waits here for
    // the next loop turn.
    let mut carried: Option<Request> = None;
    loop {
        let req = match carried.take() {
            Some(r) => r,
            None => {
                let frame = match read_frame(&mut stream, max_frame) {
                    Ok(Some(f)) => f,
                    Ok(None) => return, // clean EOF at a frame boundary
                    Err(e) => {
                        // Best effort: the peer may already be gone.
                        let _ = respond(&mut stream, &err_response(&e));
                        return;
                    }
                };
                match parse(frame) {
                    Ok(r) => r,
                    Err(e) => {
                        let _ = respond(&mut stream, &err_response(&e));
                        // An unparseable frame means we may have lost
                        // framing sync; do not trust the rest of the
                        // stream.
                        return;
                    }
                }
            }
        };
        let draining = shutdown.load(Ordering::SeqCst);
        let resp = match req {
            Request::Ping => Response::Ok("pong".to_string()),
            Request::Stats => {
                let start = Instant::now();
                let mut st = state.lock();
                let mut text = st.store.stats_text();
                if let Some(w) = wal {
                    // Coalescing counters: how many fsyncs the group
                    // commit actually paid for how many records.
                    let b = w.batch_stats();
                    text.push_str(&format!(
                        "\nwal_batches {}\nwal_records {}\nwal_max_batch {}",
                        b.batches, b.records, b.max_batch
                    ));
                }
                st.store.record("stats", start.elapsed().as_micros() as u64);
                Response::Ok(text)
            }
            Request::Query(q) => {
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let mut st = state.lock();
                    let out = handle_query(&mut st.store, &q);
                    st.store.record("query", start.elapsed().as_micros() as u64);
                    match out {
                        Ok(text) => Response::Ok(text),
                        Err(e) => err_response(&e),
                    }
                }
            }
            Request::Ingest { set, seq, bundle } => {
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    // Gather the group: this frame plus every INGEST
                    // frame the client has already pipelined onto the
                    // socket, bounded by count and bytes.
                    let mut group_bytes = bundle.len();
                    let mut group = vec![(set, seq, bundle)];
                    let mut followup = Followup::None;
                    while group.len() < ingest_group
                        && group_bytes < GROUP_READ_BYTES
                        && socket_has_data(&stream)
                    {
                        match read_frame(&mut stream, max_frame) {
                            Ok(Some(f)) => match parse(f) {
                                Ok(Request::Ingest { set, seq, bundle }) => {
                                    group_bytes += bundle.len();
                                    group.push((set, seq, bundle));
                                }
                                Ok(other) => {
                                    followup = Followup::Request(other);
                                    break;
                                }
                                Err(e) => {
                                    followup = Followup::Error(e);
                                    break;
                                }
                            },
                            Ok(None) => {
                                followup = Followup::Eof;
                                break;
                            }
                            Err(e) => {
                                followup = Followup::Error(e);
                                break;
                            }
                        }
                    }
                    // Every frame gathered so far was well-formed, so
                    // its ack (or per-item error) goes out in request
                    // order before any read-ahead failure is reported.
                    for resp in ingest_group_responses(state, wal, group) {
                        if respond(&mut stream, &resp).is_err() {
                            return;
                        }
                    }
                    match followup {
                        Followup::None => continue,
                        Followup::Eof => return,
                        Followup::Request(r) => {
                            carried = Some(r);
                            continue;
                        }
                        Followup::Error(e) => {
                            let _ = respond(&mut stream, &err_response(&e));
                            return;
                        }
                    }
                }
            }
            Request::Epoch(set) => {
                // Read path like Query: refused while draining so a
                // router never caches against a dying shard's epoch.
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let mut st = state.lock();
                    let out = st
                        .store
                        .epoch(&set)
                        .ok_or_else(|| ServeError::UnknownSet(set.clone()));
                    st.store.record("epoch", start.elapsed().as_micros() as u64);
                    match out {
                        Ok(e) => Response::Ok(e.to_string()),
                        Err(e) => err_response(&e),
                    }
                }
            }
            Request::Partial(set) => {
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let mut st = state.lock();
                    let out = st.store.partial(&set);
                    st.store.record("partial", start.elapsed().as_micros() as u64);
                    match out {
                        Ok(bytes) => Response::Data(bytes),
                        Err(e) => err_response(&e),
                    }
                }
            }
            Request::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                let _ = respond(&mut stream, &Response::Ok("draining".to_string()));
                return;
            }
        };
        if respond(&mut stream, &resp).is_err() {
            return;
        }
    }
}

/// Commit one gathered ingest group and build its in-order responses:
/// decode every bundle outside the state lock, validate/enqueue/apply
/// each under one short critical section, then — with every lock
/// released — wait for the group's covering fsync before any ack is
/// built. One lock acquisition and (with group commit) one fsync for
/// the whole group.
fn ingest_group_responses(
    state: &Arc<Mutex<ServerState>>,
    wal: &Option<Arc<WalShared>>,
    group: Vec<(String, Option<u64>, Bytes)>,
) -> Vec<Response> {
    let start = Instant::now();
    // Decode (full validation) outside the state lock so a big bundle
    // never stalls concurrent queries or sessions.
    let decoded: Vec<Result<StoredBundle, ServeError>> =
        group.iter().map(|(_, _, w)| decode_bundle(w.clone()).map_err(ServeError::Codec)).collect();
    let mut results: Vec<Result<(u64, u64), ServeError>> = Vec::with_capacity(group.len());
    let mut last_ticket = None;
    {
        let mut st = state.lock();
        for ((set, seq, wire), dec) in group.iter().zip(decoded) {
            results.push(match dec {
                Err(e) => Err(e),
                Ok(b) => durable_ingest(&mut st, wal, set, *seq, wire, b, &mut last_ticket),
            });
        }
    }
    // Ack-implies-durable: nothing is acknowledged until the flush
    // covering the group's last ticket (and so every earlier one) has
    // landed. Waiting happens outside every lock, so concurrent
    // sessions keep validating and enqueuing into the next batch.
    if let (Some(w), Some(t)) = (wal.as_ref(), last_ticket) {
        if let Err(e) = w.commit(t) {
            // Applied but not provably durable: refuse the ack. The
            // batcher stays poisoned, so no later ingest can be acked
            // either — restart recovery re-derives the valid prefix.
            for r in results.iter_mut().filter(|r| r.is_ok()) {
                *r = Err(e.clone());
            }
        }
    }
    {
        let mut st = state.lock();
        let per_item = start.elapsed().as_micros() as u64 / group.len().max(1) as u64;
        for _ in 0..group.len() {
            st.store.record("ingest", per_item);
        }
    }
    group
        .iter()
        .zip(results)
        .map(|((set, _, _), r)| match r {
            Ok((seq, epoch)) => Response::Ok(format_ingest_ack(set, seq, epoch)),
            Err(e) => err_response(&e),
        })
        .collect()
}

/// Validate, log, apply — in that order. A refused ingest touches
/// neither the log nor the store; a logged ingest is applied
/// unconditionally (apply cannot fail), so the log never runs ahead of
/// the store. With group commit the log append is an enqueue whose
/// fsync the caller awaits before acking; without it, the record is
/// fsynced right here, strictly before apply.
fn durable_ingest(
    st: &mut ServerState,
    wal: &Option<Arc<WalShared>>,
    set: &str,
    seq: Option<u64>,
    wire: &Bytes,
    bundle: StoredBundle,
    last_ticket: &mut Option<u64>,
) -> Result<(u64, u64), ServeError> {
    let wire_len = wire.len() as u64;
    let ticket = st.store.prepare_ingest(set, seq, wire_len)?;
    match (&mut st.durability, wal) {
        (Some(_), Some(w)) => {
            // Enqueue under the state lock: the log order is exactly
            // the apply order, which replay relies on.
            *last_ticket = Some(w.enqueue(&WalRecord {
                set: set.to_string(),
                mode: ticket.mode,
                seq: ticket.seq,
                wire_bytes: wire_len,
                bundle: wire.clone(),
            }));
        }
        (Some(dur), None) => dur.log_ingest(set, ticket, wire_len, wire)?,
        (None, _) => {}
    }
    let out = st.store.apply_ingest(set, ticket, wire_len, bundle);
    if let Some(dur) = &mut st.durability {
        if let Err(e) = dur.note_applied(&mut st.store) {
            // The ingest is durable in the log (or will be before its
            // ack); a failed snapshot only costs replay time on the
            // next start.
            eprintln!("memgaze-serve: snapshot failed: {e}");
        }
    }
    Ok(out)
}

fn parse((k, body): (u8, dcp_support::bytes::Bytes)) -> Result<Request, ServeError> {
    crate::wire::parse_request(k, body)
}
