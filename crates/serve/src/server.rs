//! The daemon: a TCP accept loop feeding a bounded session pool.
//!
//! Sessions run on dedicated OS threads — deliberately NOT on the
//! fork-join compute pool. A session blocks on socket reads; parking it
//! on a work-helping pool worker would starve compute (and deadlock
//! outright under `DCP_THREADS=0`, which has no workers at all). The
//! compute pool still does what it is for: `merge_encoded` inside a
//! snapshot fold parallelises across blobs exactly as it does offline.
//!
//! Robustness posture per connection: a read timeout bounds how long a
//! quiet peer can hold a session thread, `MAX_FRAME` bounds allocation,
//! and every decode failure turns into one best-effort ERR frame before
//! the connection closes. The shared state sits behind a
//! poison-recovering [`dcp_support::sync::Mutex`]: a panicking session
//! must not take the whole daemon down with it (with a poisoning lock,
//! every later session dies on the poison while the accept loop keeps
//! queueing sockets nobody will drain — the loopback regression test
//! pins the recovery). A SHUTDOWN control frame flips the drain flag:
//! the acceptor stops taking sockets, in-flight sessions finish their
//! current request, and `serve()` joins every worker before returning —
//! no request is abandoned mid-response.
//!
//! With a data directory configured, ingests are durable: each one is
//! validated, appended to the write-ahead log and fsynced, and only
//! then applied and acknowledged — see [`crate::wal`] for the recovery
//! contract. The log fsync happens under the state lock; that is the
//! price of the ack-implies-durable guarantee, and queries between
//! ingests are unaffected.

use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dcp_core::stored::decode_bundle;
use dcp_support::sync::Mutex;

use crate::error::ServeError;
use crate::query::handle_query;
use crate::store::{ProfileStore, StoreConfig};
use crate::wal::Durability;
use crate::wire::{encode_response, read_frame, write_frame, Request, Response, MAX_FRAME};

/// Everything tunable about a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Store byte budget (see [`StoreConfig`]).
    pub byte_budget: u64,
    /// Per-set reorder-buffer byte cap (see [`StoreConfig`]).
    pub pending_cap: u64,
    /// Largest frame body accepted.
    pub max_frame: u64,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Concurrent session threads.
    pub sessions: usize,
    /// Response-cache bounds.
    pub cache_entries: usize,
    pub cache_bytes: usize,
    /// Durable state directory. `None` serves from memory only.
    pub data_dir: Option<PathBuf>,
    /// Snapshot-and-truncate the log every N ingests (0 = only on
    /// clean shutdown). Ignored without a data directory.
    pub snapshot_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let store = StoreConfig::default();
        Self {
            addr: "127.0.0.1:0".to_string(),
            byte_budget: store.byte_budget,
            pending_cap: store.pending_cap,
            max_frame: MAX_FRAME,
            read_timeout: Duration::from_secs(10),
            sessions: 4,
            cache_entries: store.cache_entries,
            cache_bytes: store.cache_bytes,
            data_dir: None,
            snapshot_every: 0,
        }
    }
}

/// The state every session shares under one lock: the store and, when
/// durability is on, the open log. One lock for both because the WAL
/// append order must match the store apply order exactly.
pub struct ServerState {
    pub store: ProfileStore,
    durability: Option<Durability>,
}

/// A bound, not-yet-serving daemon. `bind` then `local_addr` then
/// `serve` (which blocks until a SHUTDOWN frame arrives).
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    state: Arc<Mutex<ServerState>>,
    recovery: Option<String>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listener and, with a data directory configured, recover
    /// the store from snapshot + log before serving anything.
    pub fn bind(config: ServerConfig) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let mut store = ProfileStore::new(StoreConfig {
            byte_budget: config.byte_budget,
            pending_cap: config.pending_cap,
            cache_entries: config.cache_entries,
            cache_bytes: config.cache_bytes,
        });
        let mut recovery = None;
        let durability = match &config.data_dir {
            None => None,
            Some(dir) => {
                let (dur, report) = Durability::open(dir, config.snapshot_every, &mut store)?;
                recovery = Some(report.render());
                Some(dur)
            }
        };
        Ok(Self {
            listener,
            config,
            state: Arc::new(Mutex::new(ServerState { store, durability })),
            recovery,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<String, ServeError> {
        Ok(self.listener.local_addr()?.to_string())
    }

    /// What recovery found at bind time, when durability is on.
    pub fn recovery_report(&self) -> Option<&str> {
        self.recovery.as_deref()
    }

    /// A handle that flips the drain flag from another thread (tests
    /// and embedders; remote clients use the SHUTDOWN frame).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The shared state, for embedders and fault-injection tests.
    pub fn state_handle(&self) -> Arc<Mutex<ServerState>> {
        Arc::clone(&self.state)
    }

    /// Accept and serve until shutdown, then drain. Blocks the calling
    /// thread for the daemon's whole life.
    pub fn serve(self) -> Result<(), ServeError> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.config.sessions.max(1));
        for _ in 0..self.config.sessions.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let shutdown = Arc::clone(&self.shutdown);
            let timeout = self.config.read_timeout;
            let max_frame = self.config.max_frame;
            workers.push(std::thread::spawn(move || loop {
                // Holding the receiver lock only while waiting keeps the
                // other session threads free to pull their own sockets.
                let next = {
                    let guard = rx.lock();
                    guard.recv()
                };
                match next {
                    Ok(stream) => handle_conn(stream, &state, &shutdown, timeout, max_frame),
                    Err(_) => return, // sender dropped: drain complete
                }
            }));
        }
        // Nonblocking accept poll so the drain flag is honoured even
        // when no client ever connects again.
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Dropping the sender ends every worker's recv loop once the
        // queued sockets (in-flight sessions) are fully served.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        // Clean shutdown: fold the store into a snapshot so the next
        // start replays nothing. Best effort — the log already has
        // everything, so a failure here costs restart time, not data.
        let mut st = self.state.lock();
        let ServerState { store, durability } = &mut *st;
        if let Some(dur) = durability {
            if let Err(e) = dur.snapshot_now(store) {
                eprintln!("memgaze-serve: shutdown snapshot failed: {e}");
            }
        }
        Ok(())
    }
}

fn respond(stream: &mut TcpStream, resp: &Response) -> Result<(), ServeError> {
    let (k, body) = encode_response(resp);
    write_frame(stream, k, &body)
}

fn err_response(e: &ServeError) -> Response {
    Response::Err(e.code(), e.to_string())
}

/// Serve one connection until clean EOF, protocol error, or shutdown.
fn handle_conn(
    mut stream: TcpStream,
    state: &Arc<Mutex<ServerState>>,
    shutdown: &Arc<AtomicBool>,
    timeout: Duration,
    max_frame: u64,
) {
    // The listener is nonblocking for the shutdown poll; make sure the
    // accepted socket is not (inheritance is platform-dependent). No
    // Nagle: responses are single frames and latency is the product.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    loop {
        let frame = match read_frame(&mut stream, max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean EOF at a frame boundary
            Err(e) => {
                // Best effort: the peer may already be gone.
                let _ = respond(&mut stream, &err_response(&e));
                return;
            }
        };
        let req = match parse(frame) {
            Ok(r) => r,
            Err(e) => {
                let _ = respond(&mut stream, &err_response(&e));
                // An unparseable frame means we may have lost framing
                // sync; do not trust the rest of the stream.
                return;
            }
        };
        let draining = shutdown.load(Ordering::SeqCst);
        let resp = match req {
            Request::Ping => Response::Ok("pong".to_string()),
            Request::Stats => {
                let start = Instant::now();
                let mut st = state.lock();
                let text = st.store.stats_text();
                st.store.record("stats", start.elapsed().as_micros() as u64);
                Response::Ok(text)
            }
            Request::Query(q) => {
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let mut st = state.lock();
                    let out = handle_query(&mut st.store, &q);
                    st.store.record("query", start.elapsed().as_micros() as u64);
                    match out {
                        Ok(text) => Response::Ok(text),
                        Err(e) => err_response(&e),
                    }
                }
            }
            Request::Ingest { set, seq, bundle } => {
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let wire_len = bundle.len() as u64;
                    // Decode (full validation) outside the state lock so
                    // a big bundle never stalls concurrent queries.
                    match decode_bundle(bundle.clone()) {
                        Err(e) => err_response(&ServeError::Codec(e)),
                        Ok(b) => {
                            let mut st = state.lock();
                            let out = durable_ingest(&mut st, &set, seq, wire_len, &bundle, b);
                            st.store.record("ingest", start.elapsed().as_micros() as u64);
                            match out {
                                Ok((seq, epoch)) => Response::Ok(format!(
                                    "ingested set={set} seq={seq} epoch={epoch}"
                                )),
                                Err(e) => err_response(&e),
                            }
                        }
                    }
                }
            }
            Request::Epoch(set) => {
                // Read path like Query: refused while draining so a
                // router never caches against a dying shard's epoch.
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let mut st = state.lock();
                    let out = st
                        .store
                        .epoch(&set)
                        .ok_or_else(|| ServeError::UnknownSet(set.clone()));
                    st.store.record("epoch", start.elapsed().as_micros() as u64);
                    match out {
                        Ok(e) => Response::Ok(e.to_string()),
                        Err(e) => err_response(&e),
                    }
                }
            }
            Request::Partial(set) => {
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let mut st = state.lock();
                    let out = st.store.partial(&set);
                    st.store.record("partial", start.elapsed().as_micros() as u64);
                    match out {
                        Ok(bytes) => Response::Data(bytes),
                        Err(e) => err_response(&e),
                    }
                }
            }
            Request::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                let _ = respond(&mut stream, &Response::Ok("draining".to_string()));
                return;
            }
        };
        if respond(&mut stream, &resp).is_err() {
            return;
        }
    }
}

/// Validate, log, apply — in that order. A refused ingest touches
/// neither the log nor the store; a logged ingest is applied
/// unconditionally (apply cannot fail), so the log never runs ahead of
/// an ack nor behind the store.
fn durable_ingest(
    st: &mut ServerState,
    set: &str,
    seq: Option<u64>,
    wire_len: u64,
    wire: &dcp_support::bytes::Bytes,
    bundle: dcp_core::stored::StoredBundle,
) -> Result<(u64, u64), ServeError> {
    let ticket = st.store.prepare_ingest(set, seq, wire_len)?;
    if let Some(dur) = &mut st.durability {
        dur.log_ingest(set, ticket, wire_len, wire)?;
    }
    let out = st.store.apply_ingest(set, ticket, wire_len, bundle);
    if let Some(dur) = &mut st.durability {
        if let Err(e) = dur.note_applied(&mut st.store) {
            // The ingest is durable in the log; a failed snapshot only
            // costs replay time on the next start.
            eprintln!("memgaze-serve: snapshot failed: {e}");
        }
    }
    Ok(out)
}

fn parse((k, body): (u8, dcp_support::bytes::Bytes)) -> Result<Request, ServeError> {
    crate::wire::parse_request(k, body)
}
