//! The length-prefixed binary frame protocol.
//!
//! Every message in either direction is one frame:
//!
//! ```text
//! +----------+------+-----------+------------------+
//! | "DCPS"   | kind | len (u32) | body (len bytes) |
//! +----------+------+-----------+------------------+
//! ```
//!
//! Request kinds: `PING`, `INGEST`, `QUERY`, `STATS`, `SHUTDOWN`, plus
//! the router↔shard pair `EPOCH` (a set's commit epoch, for cache
//! keying) and `PARTIAL` (a set's encoded shard-local partial state).
//! Response kinds: `OK` (UTF-8 text body), `ERR` (u16 code + UTF-8
//! message), and `DATA` (opaque binary body — partial state is a DCPP
//! payload, not text). Payload fields use the same LEB128 varint
//! dialect as the profile codec; the ingest body embeds a DCPB bundle
//! verbatim.
//!
//! Both sides decode frames defensively: bad magic, unknown kinds,
//! oversized length prefixes, truncation, and non-UTF-8 strings are all
//! typed [`ServeError`]s — never panics — and a stream that goes quiet
//! mid-frame is cut off by the socket read timeout.

use std::io::{ErrorKind, Read, Write};

use dcp_cct::codec::{get_slice, get_varint, put_varint};
use dcp_cct::CodecError;
use dcp_support::bytes::{Bytes, BytesMut};

use crate::error::ServeError;

/// Frame magic: "DCPS".
pub const MAGIC: [u8; 4] = *b"DCPS";

/// Default cap on one frame's body. Ingest frames carry whole bundles,
/// so this is generous; queries are tiny.
pub const MAX_FRAME: u64 = 64 * 1024 * 1024;

/// Frame kind bytes.
pub mod kind {
    pub const PING: u8 = 0;
    pub const INGEST: u8 = 1;
    pub const QUERY: u8 = 2;
    pub const STATS: u8 = 3;
    pub const SHUTDOWN: u8 = 4;
    pub const EPOCH: u8 = 5;
    pub const PARTIAL: u8 = 6;
    pub const OK: u8 = 0x80;
    pub const ERR: u8 = 0x81;
    pub const DATA: u8 = 0x82;
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Ping,
    /// Add one encoded bundle to profile set `set`. `seq` orders
    /// concurrent ingests deterministically; `None` lets the server
    /// assign arrival order.
    Ingest { set: String, seq: Option<u64>, bundle: Bytes },
    Query(String),
    Stats,
    Shutdown,
    /// The named set's commit epoch (router cache keying: a response
    /// cached under the epoch vector stays valid until any epoch moves).
    Epoch(String),
    /// The named set's shard-local partial: its accumulator state as an
    /// encoded DCPP payload the router recombines through the same
    /// reduction tree (see [`crate::store::SetPartial`]).
    Partial(String),
}

/// One parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Ok(String),
    Err(u16, String),
    /// Opaque binary payload (the answer to a `PARTIAL` request).
    Data(Bytes),
}

fn field_err(e: CodecError) -> ServeError {
    match e {
        CodecError::Truncated => ServeError::Truncated,
        other => ServeError::Codec(other),
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, ServeError> {
    let len = get_varint(buf).map_err(field_err)?;
    if len > buf.remaining() as u64 {
        return Err(ServeError::Truncated);
    }
    let raw = get_slice(buf, len as usize).map_err(field_err)?;
    std::str::from_utf8(raw.as_slice())
        .map(str::to_string)
        .map_err(|_| ServeError::BadUtf8)
}

/// Serialize a request to its frame body (without the frame header).
pub fn encode_request(req: &Request) -> (u8, Bytes) {
    let mut buf = BytesMut::new();
    let k = match req {
        Request::Ping => kind::PING,
        Request::Ingest { set, seq, bundle } => {
            put_str(&mut buf, set);
            match seq {
                Some(s) => {
                    buf.put_u8(1);
                    put_varint(&mut buf, *s);
                }
                None => buf.put_u8(0),
            }
            buf.put_slice(bundle);
            kind::INGEST
        }
        Request::Query(q) => {
            buf.put_slice(q.as_bytes());
            kind::QUERY
        }
        Request::Stats => kind::STATS,
        Request::Shutdown => kind::SHUTDOWN,
        Request::Epoch(set) => {
            buf.put_slice(set.as_bytes());
            kind::EPOCH
        }
        Request::Partial(set) => {
            buf.put_slice(set.as_bytes());
            kind::PARTIAL
        }
    };
    (k, buf.freeze())
}

/// Parse a request frame body. Response kinds arriving where a request
/// is expected are [`ServeError::BadKind`].
pub fn parse_request(k: u8, mut body: Bytes) -> Result<Request, ServeError> {
    match k {
        kind::PING => Ok(Request::Ping),
        kind::INGEST => {
            let set = get_str(&mut body)?;
            if !body.has_remaining() {
                return Err(ServeError::Truncated);
            }
            let seq = match body.get_u8() {
                0 => None,
                1 => Some(get_varint(&mut body).map_err(field_err)?),
                _ => return Err(ServeError::Truncated),
            };
            Ok(Request::Ingest { set, seq, bundle: body })
        }
        kind::QUERY => std::str::from_utf8(body.as_slice())
            .map(|q| Request::Query(q.to_string()))
            .map_err(|_| ServeError::BadUtf8),
        kind::STATS => Ok(Request::Stats),
        kind::SHUTDOWN => Ok(Request::Shutdown),
        kind::EPOCH => std::str::from_utf8(body.as_slice())
            .map(|s| Request::Epoch(s.to_string()))
            .map_err(|_| ServeError::BadUtf8),
        kind::PARTIAL => std::str::from_utf8(body.as_slice())
            .map(|s| Request::Partial(s.to_string()))
            .map_err(|_| ServeError::BadUtf8),
        other => Err(ServeError::BadKind(other)),
    }
}

/// Serialize a response to its frame body.
pub fn encode_response(resp: &Response) -> (u8, Bytes) {
    let mut buf = BytesMut::new();
    match resp {
        Response::Ok(text) => {
            buf.put_slice(text.as_bytes());
            (kind::OK, buf.freeze())
        }
        Response::Err(code, msg) => {
            buf.put_u16(*code);
            buf.put_slice(msg.as_bytes());
            (kind::ERR, buf.freeze())
        }
        Response::Data(bytes) => {
            buf.put_slice(bytes);
            (kind::DATA, buf.freeze())
        }
    }
}

/// Parse a response frame body.
pub fn parse_response(k: u8, mut body: Bytes) -> Result<Response, ServeError> {
    match k {
        kind::OK => std::str::from_utf8(body.as_slice())
            .map(|t| Response::Ok(t.to_string()))
            .map_err(|_| ServeError::BadUtf8),
        kind::ERR => {
            if body.remaining() < 2 {
                return Err(ServeError::Truncated);
            }
            let code = body.get_u16();
            let msg = std::str::from_utf8(body.as_slice())
                .map_err(|_| ServeError::BadUtf8)?
                .to_string();
            Ok(Response::Err(code, msg))
        }
        kind::DATA => Ok(Response::Data(body)),
        other => Err(ServeError::BadKind(other)),
    }
}

/// The OK body acknowledging one ingest. One formatter shared by the
/// server and the router keeps the text byte-identical across tiers, so
/// a pipelined client can match acks to outstanding pushes no matter
/// which tier answered.
pub fn format_ingest_ack(set: &str, seq: u64, epoch: u64) -> String {
    format!("ingested set={set} seq={seq} epoch={epoch}")
}

/// Parse an ingest ack back into `(set, seq, epoch)`. `None` means the
/// text is not a well-formed ack — for a windowed client that is an
/// [`ServeError::AckMismatch`], because an unpairable response stream
/// can no longer be trusted. Set names may themselves contain ` seq=`,
/// so the numeric fields are split off the right-hand end.
pub fn parse_ingest_ack(text: &str) -> Option<(String, u64, u64)> {
    let rest = text.strip_prefix("ingested set=")?;
    let (rest, epoch) = rest.rsplit_once(" epoch=")?;
    let (set, seq) = rest.rsplit_once(" seq=")?;
    Some((set.to_string(), seq.parse().ok()?, epoch.parse().ok()?))
}

/// Write one frame as a single `write_all` (header + body in one
/// buffer): one syscall, one TCP segment for small frames — two small
/// writes would hand Nagle + delayed-ACK a ~40 ms stall per request.
pub fn write_frame(w: &mut impl Write, k: u8, body: &[u8]) -> Result<(), ServeError> {
    debug_assert!(body.len() as u64 <= u32::MAX as u64);
    let mut frame = Vec::with_capacity(9 + body.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(k);
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. `Ok(None)` means the peer closed the stream cleanly
/// at a frame boundary; truncation inside a frame, bad magic, unknown
/// kinds, and oversized length prefixes are typed errors; a read
/// timeout surfaces as [`ServeError::Io`].
pub fn read_frame(r: &mut impl Read, max: u64) -> Result<Option<(u8, Bytes)>, ServeError> {
    let mut header = [0u8; 9];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 { Ok(None) } else { Err(ServeError::Truncated) };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if header[..4] != MAGIC {
        return Err(ServeError::BadMagic);
    }
    let k = header[4];
    let known = matches!(
        k,
        kind::PING | kind::INGEST | kind::QUERY | kind::STATS | kind::SHUTDOWN
            | kind::EPOCH | kind::PARTIAL | kind::OK | kind::ERR | kind::DATA
    );
    if !known {
        return Err(ServeError::BadKind(k));
    }
    let len = u32::from_be_bytes(header[5..9].try_into().expect("4 bytes")) as u64;
    if len > max {
        return Err(ServeError::FrameTooLarge { len, max });
    }
    let mut body = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < body.len() {
        match r.read(&mut body[got..]) {
            Ok(0) => return Err(ServeError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let mut buf = BytesMut::with_capacity(body.len());
    buf.put_slice(&body);
    Ok(Some((k, buf.freeze())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: Request) {
        let (k, body) = encode_request(&req);
        let mut wire = Vec::new();
        write_frame(&mut wire, k, &body).expect("write");
        let mut cur = Cursor::new(wire);
        let (rk, rbody) = read_frame(&mut cur, MAX_FRAME).expect("read").expect("frame");
        assert_eq!(rk, k);
        assert_eq!(parse_request(rk, rbody).expect("parse"), req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Query("ranking nw latency 10".into()));
        let mut b = BytesMut::new();
        b.put_slice(b"fake-bundle-bytes");
        roundtrip_request(Request::Ingest { set: "nw".into(), seq: Some(7), bundle: b.freeze() });
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3]);
        roundtrip_request(Request::Ingest { set: "s".into(), seq: None, bundle: b.freeze() });
        roundtrip_request(Request::Epoch("streamcluster".into()));
        roundtrip_request(Request::Partial("nw".into()));
    }

    #[test]
    fn responses_roundtrip() {
        let mut raw = BytesMut::new();
        raw.put_slice(&[0u8, 1, 2, 0xff, 0x80]);
        for resp in [
            Response::Ok("hello\nworld".into()),
            Response::Err(9, "too big".into()),
            Response::Data(raw.freeze()),
        ] {
            let (k, body) = encode_response(&resp);
            assert_eq!(parse_response(k, body).expect("parse"), resp);
        }
    }

    #[test]
    fn non_utf8_set_names_in_routed_requests_are_typed() {
        for k in [kind::EPOCH, kind::PARTIAL] {
            let mut b = BytesMut::new();
            b.put_slice(&[0xff, 0xfe]);
            assert_eq!(parse_request(k, b.freeze()), Err(ServeError::BadUtf8));
        }
    }

    #[test]
    fn clean_eof_is_none_and_partial_is_truncated() {
        let mut empty = Cursor::new(Vec::new());
        assert!(read_frame(&mut empty, MAX_FRAME).expect("clean eof").is_none());

        let (k, body) = encode_request(&Request::Ping);
        let mut wire = Vec::new();
        write_frame(&mut wire, k, &body).expect("write");
        for cut in 1..wire.len() {
            let mut cur = Cursor::new(wire[..cut].to_vec());
            assert!(
                matches!(read_frame(&mut cur, MAX_FRAME), Err(ServeError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn ingest_acks_roundtrip_and_malformed_text_is_refused() {
        for (set, seq, epoch) in
            [("nw", 0, 1), ("a set with spaces", 7, 7), ("tricky seq=9 name", 3, 12)]
        {
            let text = format_ingest_ack(set, seq, epoch);
            assert_eq!(
                parse_ingest_ack(&text),
                Some((set.to_string(), seq, epoch)),
                "{text}"
            );
        }
        for bad in [
            "",
            "ingested",
            "ingested set=nw",
            "ingested set=nw seq=1",
            "ingested set=nw seq=x epoch=1",
            "ingested set=nw seq=1 epoch=",
            "ok set=nw seq=1 epoch=1",
        ] {
            assert_eq!(parse_ingest_ack(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(kind::QUERY);
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(wire), 1024).expect_err("too large");
        assert_eq!(err, ServeError::FrameTooLarge { len: u32::MAX as u64, max: 1024 });
    }
}
