//! dcp-serve — a serving layer over the reduction tree.
//!
//! The offline pipeline measures, encodes, and merges profiles in one
//! process. This crate puts a daemon in front of the same machinery:
//! clients stream encoded profile bundles to named **profile sets**
//! over a length-prefixed TCP protocol; the store folds them with the
//! incremental reduction-tree merge; view queries (top-down, bottom-up,
//! flat, ranking, variable-centric, two-profile diff) render from the
//! merged trees through the exact view code the CLI uses, behind an
//! LRU response cache invalidated by ingest epochs.
//!
//! Layering (hermetic, `std::net` only):
//!
//! ```text
//! client.rs  — blocking client; windowed pipelined ingest (W
//!              outstanding pushes, acks matched FIFO by set/seq)
//! wire.rs    — "DCPS" frames + request/response bodies (DCP2 varints)
//! server.rs  — accept loop, session thread pool, graceful drain,
//!              socket read-ahead ingest groups + group-commit acks
//! router.rs  — scatter-gather coordinator over N shard daemons;
//!              ingest fans to replicas concurrently
//! query.rs   — verb language -> parse / fetch / render combiner split
//! store.rs   — named sets, seq reorder, epochs, budget, LRU cache,
//!              shard partials ("DCPP") for the distributed tree
//! wal.rs     — write-ahead log + snapshots; byte-identical recovery;
//!              group-commit batcher amortizing fsync across sessions
//! error.rs   — one typed error across all of the above
//! ```
//!
//! Scale-out: [`router`] places whole profile sets on shard daemons
//! via a consistent-hash ring, replicates ingest R ways, and merges
//! shard partials through the same reduction tree — responses are
//! byte-identical to a single daemon holding every set.
//!
//! Determinism contract: with client-assigned sequence numbers, the
//! merged profile a set serves is byte-identical to
//! `merge_encoded_sequential` over the same bundles in sequence order,
//! no matter how many connections raced — the loopback e2e test pins
//! this end to end. With a data directory configured the contract
//! extends through crashes: a daemon killed at any instant and
//! restarted answers every query with the same bytes an uncrashed one
//! would (see [`wal`]).

pub mod client;
pub mod error;
pub mod query;
pub mod router;
pub mod server;
pub mod store;
pub mod wal;
pub mod wire;

pub use client::{Ack, Client, IngestPipeline};
pub use error::ServeError;
pub use query::{handle_query, parse_query, render_sets, render_view, ParsedQuery, ViewPlan, ViewQuery};
pub use router::{Router, RouterConfig};
pub use server::{Server, ServerConfig};
pub use store::{
    decode_set_partial, encode_set_partial, CacheKey, IngestMode, ProfileStore, SetPartial,
    StoreConfig,
};
pub use wal::{Durability, RecoveryReport, WalShared};
pub use wire::{format_ingest_ack, parse_ingest_ack, Request, Response, MAX_FRAME};
