//! Crash-safe durability for the profile store: a write-ahead log plus
//! periodic snapshots.
//!
//! The contract is **byte-identical recovery**: a daemon killed at any
//! instant and restarted over the same data directory answers every
//! query with exactly the bytes an uncrashed daemon would have produced
//! from the acknowledged ingests (the kill-anywhere differential sweep
//! in `tests/durability_e2e.rs` pins this for all five Table-1
//! workloads). The identity rests on two invariants pinned elsewhere:
//! `encode_bundle(decode_bundle(w)) == w`, so logging wire bytes loses
//! nothing, and the incremental-merge fold is a pure re-bracketing, so
//! a snapshot of the folded accumulator re-encoded as one bundle merges
//! forward exactly like the original bundle sequence.
//!
//! On-disk layout inside the data directory:
//!
//! ```text
//! ingest.wal   header ("DCPW" + version), then length-prefixed records:
//!              | u32 body len | u64 FxHash of body | body |
//!              body = mode u8, seq, set name, wire bytes, bundle bytes
//!              (varint fields, same dialect as the profile codec)
//! store.snap   header ("DCPD" + version), counters, per-set state
//!              (mode, next_seq, epoch, folded bundle, reorder buffer),
//!              trailing u64 FxHash of everything before it
//! ```
//!
//! Write discipline: an ingest is validated (`prepare_ingest`), then
//! appended and fsynced, then applied — the store never holds state the
//! log does not. A snapshot is written to a temp file, fsynced, and
//! renamed over the old one before the log is truncated, so every crash
//! point leaves either (old snapshot + full log) or (new snapshot +
//! possibly-stale log). Both recover: replay skips records the snapshot
//! already covers (sequence below the commit watermark, or sitting in
//! the restored reorder buffer), which makes it idempotent across the
//! snapshot/truncate window.
//!
//! Damage tolerance: a torn or bit-flipped log tail (the only part a
//! crash can damage — everything earlier was fsynced before its ingest
//! was acknowledged) is detected by the length/checksum framing, the
//! valid prefix is recovered, and the file is truncated to it; the loss
//! is reported as a typed [`ServeError::WalCorrupt`], never a panic. A
//! log or snapshot that fails header validation outright is refused —
//! that is not our file, and silently clobbering it would destroy data.
//!
//! Crash-injection hooks for the differential harness: with
//! `DCP_WAL_CRASH_AFTER=N` the Nth append aborts the process right
//! after its fsync (or, with `DCP_WAL_CRASH_MODE=torn`, writes only
//! half the record first — a torn write at the kill point).

use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dcp_cct::codec::{get_slice, get_varint, put_varint};
use dcp_core::stored::{decode_bundle, StoredBundle};
use dcp_support::bytes::{Bytes, BytesMut};
use dcp_support::FxHasher;

use crate::error::ServeError;
use crate::store::{IngestMode, IngestTicket, ProfileStore, SetDump};

const WAL_MAGIC: [u8; 4] = *b"DCPW";
const SNAP_MAGIC: [u8; 4] = *b"DCPD";
const VERSION: u8 = 1;
/// Header: magic + version byte.
const HEADER_LEN: u64 = 5;
/// Record frame overhead: u32 body length + u64 checksum.
const RECORD_OVERHEAD: usize = 12;
/// Sanity cap on one record body — matches the wire frame cap, so any
/// length prefix a valid writer could not have produced reads as tail
/// damage rather than an allocation request.
const MAX_RECORD: u64 = crate::wire::MAX_FRAME;

const WAL_FILE: &str = "ingest.wal";
const SNAP_FILE: &str = "store.snap";
const SNAP_TMP: &str = "store.snap.tmp";

fn checksum(body: &[u8]) -> u64 {
    // FxHash: every mixing step is bijective, so any single-bit flip
    // changes the digest; deterministic (no random state), in-tree.
    let mut h = FxHasher::default();
    h.write(body);
    h.finish()
}

fn mode_byte(mode: IngestMode) -> u8 {
    match mode {
        IngestMode::Arrival => 0,
        IngestMode::Explicit => 1,
    }
}

fn mode_of(b: u8) -> Option<IngestMode> {
    match b {
        0 => Some(IngestMode::Arrival),
        1 => Some(IngestMode::Explicit),
        _ => None,
    }
}

fn put_bytes(buf: &mut BytesMut, raw: &[u8]) {
    put_varint(buf, raw.len() as u64);
    buf.put_slice(raw);
}

fn get_bytes(buf: &mut Bytes) -> Result<Bytes, ServeError> {
    let len = get_varint(buf).map_err(|_| ServeError::Truncated)?;
    if len > buf.remaining() as u64 {
        return Err(ServeError::Truncated);
    }
    get_slice(buf, len as usize).map_err(|_| ServeError::Truncated)
}

fn get_string(buf: &mut Bytes) -> Result<String, ServeError> {
    let raw = get_bytes(buf)?;
    std::str::from_utf8(raw.as_slice()).map(str::to_string).map_err(|_| ServeError::BadUtf8)
}

/// One logged ingest, exactly the fields replay needs to re-apply the
/// same commit slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub set: String,
    pub mode: IngestMode,
    pub seq: u64,
    pub wire_bytes: u64,
    pub bundle: Bytes,
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut body = BytesMut::new();
    body.put_u8(mode_byte(rec.mode));
    put_varint(&mut body, rec.seq);
    put_bytes(&mut body, rec.set.as_bytes());
    put_varint(&mut body, rec.wire_bytes);
    put_bytes(&mut body, rec.bundle.as_slice());
    let body = body.freeze();
    let mut frame = Vec::with_capacity(RECORD_OVERHEAD + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&checksum(body.as_slice()).to_be_bytes());
    frame.extend_from_slice(body.as_slice());
    frame
}

fn decode_record_body(mut body: Bytes) -> Result<WalRecord, ServeError> {
    if !body.has_remaining() {
        return Err(ServeError::Truncated);
    }
    let mode = mode_of(body.get_u8()).ok_or(ServeError::Truncated)?;
    let seq = get_varint(&mut body).map_err(|_| ServeError::Truncated)?;
    let set = get_string(&mut body)?;
    let wire_bytes = get_varint(&mut body).map_err(|_| ServeError::Truncated)?;
    let bundle = get_bytes(&mut body)?;
    if body.has_remaining() {
        return Err(ServeError::Truncated);
    }
    Ok(WalRecord { set, mode, seq, wire_bytes, bundle })
}

/// The append-only ingest log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// Byte length of the valid prefix (== file length between appends).
    len: u64,
    /// Appends performed by this process — drives the crash hooks.
    appends: u64,
    crash_after: Option<u64>,
    crash_torn: bool,
}

impl Wal {
    /// Append one record and fsync it. On return the record is durable.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), ServeError> {
        let frame = encode_record(rec);
        let crash_now = self.crash_after == Some(self.appends + 1);
        if crash_now && self.crash_torn {
            // Simulate a torn write: half the record reaches the disk,
            // then the process dies.
            let half = &frame[..frame.len() / 2];
            let _ = self.file.write_all(half);
            let _ = self.file.sync_data();
            std::process::abort();
        }
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.len += frame.len() as u64;
        self.appends += 1;
        if crash_now {
            std::process::abort();
        }
        Ok(())
    }

    /// Drop every record (the snapshot now covers them) and reset to a
    /// bare header.
    fn truncate_to_header(&mut self) -> Result<(), ServeError> {
        self.file.set_len(HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.file.sync_data()?;
        self.len = HEADER_LEN;
        Ok(())
    }
}

/// What recovery found, for the startup report and the tests.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Sets restored from the snapshot.
    pub snapshot_sets: usize,
    /// Log records applied on top of the snapshot.
    pub replayed: u64,
    /// Log records the snapshot already covered (idempotent skip).
    pub skipped: u64,
    /// Damage found at the log tail; the valid prefix was kept.
    pub tail_error: Option<ServeError>,
}

impl RecoveryReport {
    pub fn render(&self) -> String {
        let mut s = format!(
            "recovered {} set(s) from snapshot, replayed {} wal record(s), skipped {}",
            self.snapshot_sets, self.replayed, self.skipped
        );
        if let Some(e) = &self.tail_error {
            s.push_str(&format!("; dropped damaged tail ({e})"));
        }
        s
    }
}

/// The durability layer one server instance owns: its data directory,
/// the open log, and the snapshot cadence.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    wal: Wal,
    snapshot_every: u64,
    since_snapshot: u64,
}

impl Durability {
    /// Open (or create) a data directory, restore the snapshot, replay
    /// the log tail into `store`, and truncate any damaged tail. The
    /// store must be freshly constructed.
    pub fn open(
        dir: &Path,
        snapshot_every: u64,
        store: &mut ProfileStore,
    ) -> Result<(Self, RecoveryReport), ServeError> {
        std::fs::create_dir_all(dir)?;
        let snapshot_sets = match read_snapshot(&dir.join(SNAP_FILE))? {
            None => 0,
            Some(snap) => {
                store.restore_counters(snap.bytes_stored, snap.ingests);
                let n = snap.sets.len();
                for s in snap.sets {
                    store.restore_set(
                        s.name,
                        s.mode,
                        s.next_seq,
                        s.epoch,
                        s.bundles,
                        s.blob_bytes,
                        s.state,
                        s.pending,
                    );
                }
                n
            }
        };
        let (wal, replayed, skipped, tail_error) = open_wal(&dir.join(WAL_FILE), store)?;
        let report = RecoveryReport { snapshot_sets, replayed, skipped, tail_error };
        Ok((
            Self {
                dir: dir.to_path_buf(),
                wal,
                snapshot_every,
                since_snapshot: 0,
            },
            report,
        ))
    }

    /// Make one prepared ingest durable. Called between `prepare_ingest`
    /// and `apply_ingest`; once this returns Ok the ingest survives any
    /// crash.
    pub fn log_ingest(
        &mut self,
        set: &str,
        ticket: IngestTicket,
        wire_bytes: u64,
        bundle: &Bytes,
    ) -> Result<(), ServeError> {
        self.wal.append(&WalRecord {
            set: set.to_string(),
            mode: ticket.mode,
            seq: ticket.seq,
            wire_bytes,
            bundle: bundle.clone(),
        })
    }

    /// Count one applied ingest and snapshot if the cadence says so.
    /// Returns whether a snapshot was written.
    pub fn note_applied(&mut self, store: &mut ProfileStore) -> Result<bool, ServeError> {
        self.since_snapshot += 1;
        if self.snapshot_every == 0 || self.since_snapshot < self.snapshot_every {
            return Ok(false);
        }
        self.snapshot_now(store)?;
        Ok(true)
    }

    /// Fold the store into a snapshot, land it atomically, truncate the
    /// log. Crash-ordering: tmp write + fsync, rename, dir fsync, THEN
    /// truncate — every intermediate state recovers (replay over the new
    /// snapshot is idempotent).
    pub fn snapshot_now(&mut self, store: &mut ProfileStore) -> Result<(), ServeError> {
        let raw = encode_snapshot(store)?;
        let tmp = self.dir.join(SNAP_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&raw)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAP_FILE))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.wal.truncate_to_header()?;
        self.since_snapshot = 0;
        Ok(())
    }
}

fn open_wal(
    path: &Path,
    store: &mut ProfileStore,
) -> Result<(Wal, u64, u64, Option<ServeError>), ServeError> {
    // truncate(false): an existing log is the durable state — never clobber.
    let mut file =
        OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
    let file_len = file.metadata()?.len();
    let crash_after = std::env::var("DCP_WAL_CRASH_AFTER").ok().and_then(|v| v.parse().ok());
    let crash_torn =
        std::env::var("DCP_WAL_CRASH_MODE").map(|v| v == "torn").unwrap_or(false);

    let mut tail_error = None;
    if file_len < HEADER_LEN {
        // Empty (or torn-during-creation) file: the valid prefix is
        // empty. Lay down a fresh header.
        if file_len > 0 {
            tail_error = Some(ServeError::WalCorrupt {
                offset: 0,
                detail: format!("header torn at {file_len} byte(s)"),
            });
        }
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        let mut header = Vec::from(WAL_MAGIC);
        header.push(VERSION);
        file.write_all(&header)?;
        file.sync_data()?;
        return Ok((
            Wal { file, len: HEADER_LEN, appends: 0, crash_after, crash_torn },
            0,
            0,
            tail_error,
        ));
    }

    let mut raw = Vec::with_capacity(file_len as usize);
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut raw)?;
    if raw[..4] != WAL_MAGIC || raw[4] != VERSION {
        // Not our log: refuse rather than clobber.
        return Err(ServeError::WalCorrupt {
            offset: 0,
            detail: "bad magic or version".to_string(),
        });
    }

    let mut offset = HEADER_LEN as usize;
    let mut replayed = 0u64;
    let mut skipped = 0u64;
    while offset < raw.len() {
        let damage = |detail: &str| ServeError::WalCorrupt {
            offset: offset as u64,
            detail: detail.to_string(),
        };
        if raw.len() - offset < RECORD_OVERHEAD {
            tail_error = Some(damage("torn record frame"));
            break;
        }
        let body_len =
            u32::from_be_bytes(raw[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        if body_len as u64 > MAX_RECORD {
            tail_error = Some(damage("implausible record length"));
            break;
        }
        let sum = u64::from_be_bytes(raw[offset + 4..offset + 12].try_into().expect("8 bytes"));
        if raw.len() - offset - RECORD_OVERHEAD < body_len {
            tail_error = Some(damage("torn record body"));
            break;
        }
        let body = &raw[offset + RECORD_OVERHEAD..offset + RECORD_OVERHEAD + body_len];
        if checksum(body) != sum {
            tail_error = Some(damage("checksum mismatch"));
            break;
        }
        let mut buf = BytesMut::with_capacity(body.len());
        buf.put_slice(body);
        let rec = match decode_record_body(buf.freeze()) {
            Ok(r) => r,
            Err(_) => {
                tail_error = Some(damage("unparseable record body"));
                break;
            }
        };
        let bundle = match decode_bundle(rec.bundle.clone()) {
            Ok(b) => b,
            Err(_) => {
                tail_error = Some(damage("undecodable bundle payload"));
                break;
            }
        };
        match store.replay_ingest(&rec.set, rec.mode, rec.seq, rec.wire_bytes, bundle) {
            Ok(true) => replayed += 1,
            Ok(false) => skipped += 1,
            Err(_) => {
                // A checksum-valid record that contradicts the set's
                // sequencing discipline cannot come from a valid writer.
                tail_error = Some(damage("record contradicts set state"));
                break;
            }
        }
        offset += RECORD_OVERHEAD + body_len;
    }

    if tail_error.is_some() {
        file.set_len(offset as u64)?;
        file.sync_data()?;
    }
    file.seek(SeekFrom::Start(offset as u64))?;
    Ok((
        Wal { file, len: offset as u64, appends: 0, crash_after, crash_torn },
        replayed,
        skipped,
        tail_error,
    ))
}

struct SnapSet {
    name: String,
    mode: IngestMode,
    next_seq: u64,
    epoch: u64,
    bundles: u64,
    blob_bytes: u64,
    state: StoredBundle,
    pending: Vec<(u64, u64, StoredBundle)>,
}

struct Snapshot {
    bytes_stored: u64,
    ingests: u64,
    sets: Vec<SnapSet>,
}

fn encode_snapshot(store: &mut ProfileStore) -> Result<Vec<u8>, ServeError> {
    let dumps: Vec<SetDump> = store.dump_sets()?;
    let mut buf = BytesMut::new();
    buf.put_slice(&SNAP_MAGIC);
    buf.put_u8(VERSION);
    put_varint(&mut buf, store.bytes_stored());
    put_varint(&mut buf, store.ingests());
    put_varint(&mut buf, dumps.len() as u64);
    for d in dumps {
        put_bytes(&mut buf, d.name.as_bytes());
        buf.put_u8(mode_byte(d.mode));
        put_varint(&mut buf, d.next_seq);
        put_varint(&mut buf, d.epoch);
        put_varint(&mut buf, d.bundles);
        put_varint(&mut buf, d.blob_bytes);
        put_bytes(&mut buf, d.state.as_slice());
        put_varint(&mut buf, d.pending.len() as u64);
        for (seq, wire, raw) in d.pending {
            put_varint(&mut buf, seq);
            put_varint(&mut buf, wire);
            put_bytes(&mut buf, raw.as_slice());
        }
    }
    let mut out = Vec::from(buf.freeze().as_slice());
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_be_bytes());
    Ok(out)
}

fn read_snapshot(path: &Path) -> Result<Option<Snapshot>, ServeError> {
    let raw = match std::fs::read(path) {
        Ok(r) => r,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    // The snapshot lands by atomic rename, so unlike the log tail it is
    // all-or-nothing: any validation failure means committed data may be
    // missing, and recovery refuses to guess.
    let corrupt = |detail: &str| ServeError::SnapshotCorrupt(detail.to_string());
    if raw.len() < HEADER_LEN as usize + 8 {
        return Err(corrupt("file shorter than header"));
    }
    if raw[..4] != SNAP_MAGIC || raw[4] != VERSION {
        return Err(corrupt("bad magic or version"));
    }
    let (body, sum_raw) = raw.split_at(raw.len() - 8);
    let sum = u64::from_be_bytes(sum_raw.try_into().expect("8 bytes"));
    if checksum(body) != sum {
        return Err(corrupt("checksum mismatch"));
    }
    let mut buf = BytesMut::with_capacity(body.len() - HEADER_LEN as usize);
    buf.put_slice(&body[HEADER_LEN as usize..]);
    let mut buf = buf.freeze();
    let trunc = |_| corrupt("truncated field");
    let bytes_stored = get_varint(&mut buf).map_err(trunc)?;
    let ingests = get_varint(&mut buf).map_err(trunc)?;
    let set_count = get_varint(&mut buf).map_err(trunc)?;
    let mut sets = Vec::new();
    for _ in 0..set_count {
        let name = get_string(&mut buf).map_err(|_| corrupt("bad set name"))?;
        if !buf.has_remaining() {
            return Err(corrupt("truncated field"));
        }
        let mode = mode_of(buf.get_u8()).ok_or_else(|| corrupt("bad mode byte"))?;
        let next_seq = get_varint(&mut buf).map_err(trunc)?;
        let epoch = get_varint(&mut buf).map_err(trunc)?;
        let bundles = get_varint(&mut buf).map_err(trunc)?;
        let blob_bytes = get_varint(&mut buf).map_err(trunc)?;
        let state_raw = get_bytes(&mut buf).map_err(|_| corrupt("truncated state"))?;
        let state =
            decode_bundle(state_raw).map_err(|e| corrupt(&format!("state bundle: {e}")))?;
        let pending_count = get_varint(&mut buf).map_err(trunc)?;
        let mut pending = Vec::new();
        for _ in 0..pending_count {
            let seq = get_varint(&mut buf).map_err(trunc)?;
            let wire = get_varint(&mut buf).map_err(trunc)?;
            let raw = get_bytes(&mut buf).map_err(|_| corrupt("truncated pending"))?;
            let bundle =
                decode_bundle(raw).map_err(|e| corrupt(&format!("pending bundle: {e}")))?;
            pending.push((seq, wire, bundle));
        }
        sets.push(SnapSet { name, mode, next_seq, epoch, bundles, blob_bytes, state, pending });
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing garbage"));
    }
    Ok(Some(Snapshot { bytes_stored, ingests, sets }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use dcp_core::stored::encode_bundle;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dcp-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn bundle() -> (StoredBundle, Bytes) {
        let mut b = StoredBundle::default();
        b.stats.samples = 3;
        let raw = encode_bundle(&b);
        (b, raw)
    }

    fn durable_ingest(
        store: &mut ProfileStore,
        dur: &mut Durability,
        set: &str,
        seq: Option<u64>,
    ) {
        let (b, raw) = bundle();
        let wire = raw.len() as u64;
        let ticket = store.prepare_ingest(set, seq, wire).expect("prepare");
        dur.log_ingest(set, ticket, wire, &raw).expect("log");
        store.apply_ingest(set, ticket, wire, b);
        dur.note_applied(store).expect("note");
    }

    fn recover(dir: &Path) -> (ProfileStore, RecoveryReport) {
        let mut store = ProfileStore::new(StoreConfig::default());
        let (_dur, report) = Durability::open(dir, 0, &mut store).expect("open");
        (store, report)
    }

    #[test]
    fn log_then_recover_replays_everything() {
        let dir = tmpdir("replay");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, r) = Durability::open(&dir, 0, &mut store).expect("open");
        assert_eq!((r.snapshot_sets, r.replayed), (0, 0));
        durable_ingest(&mut store, &mut dur, "a", Some(0));
        durable_ingest(&mut store, &mut dur, "a", Some(2)); // buffered
        durable_ingest(&mut store, &mut dur, "b", None);
        drop(dur);

        let (re, report) = recover(&dir);
        assert_eq!(report.replayed, 3);
        assert!(report.tail_error.is_none());
        assert_eq!(re.epoch("a"), store.epoch("a"));
        assert_eq!(re.epoch("b"), store.epoch("b"));
        assert_eq!(re.stats_text().lines().find(|l| l.starts_with("set[")),
                   store.stats_text().lines().find(|l| l.starts_with("set[")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_log_and_replay_is_idempotent() {
        let dir = tmpdir("snap");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir, 0, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", Some(0));
        durable_ingest(&mut store, &mut dur, "a", Some(3)); // stays pending
        dur.snapshot_now(&mut store).expect("snapshot");
        assert_eq!(
            std::fs::metadata(dir.join(WAL_FILE)).expect("meta").len(),
            HEADER_LEN,
            "snapshot truncates the log"
        );
        durable_ingest(&mut store, &mut dur, "a", Some(1));
        drop(dur);

        let (mut re, report) = recover(&dir);
        assert_eq!(report.snapshot_sets, 1);
        assert_eq!(report.replayed, 1);
        assert_eq!(re.epoch("a"), store.epoch("a"));
        // The restored pending entry still commits once the gap fills.
        let (b, raw) = bundle();
        re.ingest("a", Some(2), raw.len() as u64, b).expect("fill");
        assert_eq!(re.epoch("a"), Some(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_over_untruncated_log_double_applies_nothing() {
        // The crash window between snapshot rename and log truncation:
        // recovery sees the new snapshot plus a log whose records the
        // snapshot already covers. Replay must skip them all.
        let dir = tmpdir("window");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir, 0, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", Some(0)); // commits
        durable_ingest(&mut store, &mut dur, "a", Some(3)); // stays pending
        let untruncated = std::fs::read(dir.join(WAL_FILE)).expect("read");
        dur.snapshot_now(&mut store).expect("snapshot");
        drop(dur);
        // Undo the truncation, as if the crash hit right after rename.
        std::fs::write(dir.join(WAL_FILE), &untruncated).expect("restore log");

        let (re, report) = recover(&dir);
        assert_eq!(report.snapshot_sets, 1);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.skipped, 2, "committed and pending records both skip");
        assert_eq!(re.epoch("a"), store.epoch("a"));
        assert_eq!(re.bytes_stored(), store.bytes_stored());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn dur_file_len(dir: &Path) -> u64 {
        std::fs::metadata(dir.join(WAL_FILE)).expect("meta").len()
    }

    #[test]
    fn torn_tail_recovers_valid_prefix() {
        let dir = tmpdir("torn");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir, 0, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", Some(0));
        durable_ingest(&mut store, &mut dur, "a", Some(1));
        drop(dur);
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).expect("read");
        // Every proper-prefix truncation of the second record recovers
        // exactly the first.
        let first_end = {
            let body_len =
                u32::from_be_bytes(full[5..9].try_into().expect("4")) as usize;
            5 + RECORD_OVERHEAD + body_len
        };
        for cut in first_end + 1..full.len() {
            std::fs::write(&path, &full[..cut]).expect("truncate");
            let (re, report) = recover(&dir);
            assert_eq!(report.replayed, 1, "cut at {cut}");
            assert!(
                matches!(report.tail_error, Some(ServeError::WalCorrupt { .. })),
                "cut at {cut}"
            );
            assert_eq!(re.epoch("a"), Some(1), "cut at {cut}");
            assert_eq!(dur_file_len(&dir), first_end as u64, "file truncated to prefix");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_in_the_tail_are_detected() {
        let dir = tmpdir("flip");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir, 0, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", Some(0));
        durable_ingest(&mut store, &mut dur, "a", Some(1));
        drop(dur);
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).expect("read");
        let first_end = {
            let body_len =
                u32::from_be_bytes(full[5..9].try_into().expect("4")) as usize;
            5 + RECORD_OVERHEAD + body_len
        };
        // Flip one bit in the second record's checksum and one in its
        // body: both recover only the first record. (Damaging the length
        // prefix is covered by the torn-tail sweep.)
        for pos in [first_end + 6, first_end + RECORD_OVERHEAD + 2] {
            let mut raw = full.clone();
            raw[pos] ^= 0x10;
            std::fs::write(&path, &raw).expect("write");
            let (re, report) = recover(&dir);
            assert_eq!(report.replayed, 1, "flip at {pos}");
            assert!(report.tail_error.is_some(), "flip at {pos}");
            assert_eq!(re.epoch("a"), Some(1), "flip at {pos}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_length_log_is_an_empty_prefix() {
        let dir = tmpdir("zero");
        std::fs::write(dir.join(WAL_FILE), b"").expect("write");
        let (store, report) = recover(&dir);
        assert_eq!(report.replayed, 0);
        assert!(report.tail_error.is_none(), "empty file is a clean empty log");
        assert_eq!(store.ingests(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_log_and_damaged_snapshot_are_refused() {
        let dir = tmpdir("foreign");
        std::fs::write(dir.join(WAL_FILE), b"not a wal file at all").expect("write");
        let mut store = ProfileStore::new(StoreConfig::default());
        let err = Durability::open(&dir, 0, &mut store).expect_err("refused");
        assert!(matches!(err, ServeError::WalCorrupt { offset: 0, .. }), "{err}");

        let dir2 = tmpdir("badsnap");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir2, 0, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", None);
        dur.snapshot_now(&mut store).expect("snapshot");
        drop(dur);
        let snap_path = dir2.join(SNAP_FILE);
        let mut raw = std::fs::read(&snap_path).expect("read");
        let mid = raw.len() / 2;
        raw[mid] ^= 0x01;
        std::fs::write(&snap_path, &raw).expect("write");
        let mut store = ProfileStore::new(StoreConfig::default());
        let err = Durability::open(&dir2, 0, &mut store).expect_err("refused");
        assert!(matches!(err, ServeError::SnapshotCorrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn cadence_snapshots_after_every_n_ingests() {
        let dir = tmpdir("cadence");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir, 2, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", None);
        assert!(!dir.join(SNAP_FILE).exists());
        durable_ingest(&mut store, &mut dur, "a", None);
        assert!(dir.join(SNAP_FILE).exists(), "second ingest hits the cadence");
        assert_eq!(dur_file_len(&dir), HEADER_LEN);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
