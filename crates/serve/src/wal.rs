//! Crash-safe durability for the profile store: a write-ahead log plus
//! periodic snapshots.
//!
//! The contract is **byte-identical recovery**: a daemon killed at any
//! instant and restarted over the same data directory answers every
//! query with exactly the bytes an uncrashed daemon would have produced
//! from the acknowledged ingests (the kill-anywhere differential sweep
//! in `tests/durability_e2e.rs` pins this for all five Table-1
//! workloads). The identity rests on two invariants pinned elsewhere:
//! `encode_bundle(decode_bundle(w)) == w`, so logging wire bytes loses
//! nothing, and the incremental-merge fold is a pure re-bracketing, so
//! a snapshot of the folded accumulator re-encoded as one bundle merges
//! forward exactly like the original bundle sequence.
//!
//! On-disk layout inside the data directory:
//!
//! ```text
//! ingest.wal   header ("DCPW" + version), then length-prefixed records:
//!              | u32 body len | u64 FxHash of body | body |
//!              body = mode u8, seq, set name, wire bytes, bundle bytes
//!              (varint fields, same dialect as the profile codec)
//! store.snap   header ("DCPD" + version), counters, per-set state
//!              (mode, next_seq, epoch, folded bundle, reorder buffer),
//!              trailing u64 FxHash of everything before it
//! ```
//!
//! Write discipline: an ingest is validated (`prepare_ingest`), its
//! record is enqueued into the shared [`GroupCommit`] batcher and the
//! delta applied under the store lock, and the **ack is released only
//! after the flush covering its record lands** — one `write + fsync`
//! covers every record the batcher coalesced (see [`WalShared`]). The
//! store may briefly hold applied-but-unfsynced state, but nothing is
//! ever *acknowledged* before its record is durable, which is the
//! contract the kill-anywhere sweep checks ("acked implies recovered").
//! The single-fsync-per-record path ([`Durability::log_ingest`], used
//! when group commit is disabled and by the unit tests) keeps the
//! stricter PR-6 ordering: append + fsync strictly before apply.
//! A snapshot is written to a temp file, fsynced, and
//! renamed over the old one before the log is truncated, so every crash
//! point leaves either (old snapshot + full log) or (new snapshot +
//! possibly-stale log). Both recover: replay skips records the snapshot
//! already covers (sequence below the commit watermark, or sitting in
//! the restored reorder buffer), which makes it idempotent across the
//! snapshot/truncate window.
//!
//! Damage tolerance: a torn or bit-flipped log tail (the only part a
//! crash can damage — everything earlier was fsynced before its ingest
//! was acknowledged) is detected by the length/checksum framing, the
//! valid prefix is recovered, and the file is truncated to it; the loss
//! is reported as a typed [`ServeError::WalCorrupt`], never a panic. A
//! log or snapshot that fails header validation outright is refused —
//! that is not our file, and silently clobbering it would destroy data.
//!
//! Crash-injection hooks for the differential harness: with
//! `DCP_WAL_CRASH_AFTER=N` the append (or batched flush) that makes
//! the Nth record durable aborts the process right after its fsync —
//! records before N in the same batch reach the disk, records after N
//! are lost with it, which is exactly the "crash between a group fsync
//! and its acks / mid-batch" window the e2e sweep walks. With
//! `DCP_WAL_CRASH_MODE=torn`, only half of record N is written first —
//! a torn write at the kill point.

use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dcp_cct::codec::{get_slice, get_varint, put_varint};
use dcp_core::stored::{decode_bundle, StoredBundle};
use dcp_support::batch::{BatchStats, GroupCommit};
use dcp_support::bytes::{Bytes, BytesMut};
use dcp_support::sync::Mutex;
use dcp_support::FxHasher;

use crate::error::ServeError;
use crate::store::{IngestMode, IngestTicket, ProfileStore, SetDump};

const WAL_MAGIC: [u8; 4] = *b"DCPW";
const SNAP_MAGIC: [u8; 4] = *b"DCPD";
const VERSION: u8 = 1;
/// Header: magic + version byte.
const HEADER_LEN: u64 = 5;
/// Record frame overhead: u32 body length + u64 checksum.
const RECORD_OVERHEAD: usize = 12;
/// Sanity cap on one record body — matches the wire frame cap, so any
/// length prefix a valid writer could not have produced reads as tail
/// damage rather than an allocation request.
const MAX_RECORD: u64 = crate::wire::MAX_FRAME;

const WAL_FILE: &str = "ingest.wal";
const SNAP_FILE: &str = "store.snap";
const SNAP_TMP: &str = "store.snap.tmp";

/// Group-commit batch bounds: one flush covers at most this many
/// records / bytes. Large enough that a full session complement's
/// in-flight windows coalesce into one fsync; small enough that one
/// batch's buffered copy stays cheap.
const GROUP_MAX_RECORDS: usize = 256;
const GROUP_MAX_BYTES: usize = 8 << 20;

fn checksum(body: &[u8]) -> u64 {
    // FxHash: every mixing step is bijective, so any single-bit flip
    // changes the digest; deterministic (no random state), in-tree.
    let mut h = FxHasher::default();
    h.write(body);
    h.finish()
}

fn mode_byte(mode: IngestMode) -> u8 {
    match mode {
        IngestMode::Arrival => 0,
        IngestMode::Explicit => 1,
    }
}

fn mode_of(b: u8) -> Option<IngestMode> {
    match b {
        0 => Some(IngestMode::Arrival),
        1 => Some(IngestMode::Explicit),
        _ => None,
    }
}

fn put_bytes(buf: &mut BytesMut, raw: &[u8]) {
    put_varint(buf, raw.len() as u64);
    buf.put_slice(raw);
}

fn get_bytes(buf: &mut Bytes) -> Result<Bytes, ServeError> {
    let len = get_varint(buf).map_err(|_| ServeError::Truncated)?;
    if len > buf.remaining() as u64 {
        return Err(ServeError::Truncated);
    }
    get_slice(buf, len as usize).map_err(|_| ServeError::Truncated)
}

fn get_string(buf: &mut Bytes) -> Result<String, ServeError> {
    let raw = get_bytes(buf)?;
    std::str::from_utf8(raw.as_slice()).map(str::to_string).map_err(|_| ServeError::BadUtf8)
}

/// One logged ingest, exactly the fields replay needs to re-apply the
/// same commit slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub set: String,
    pub mode: IngestMode,
    pub seq: u64,
    pub wire_bytes: u64,
    pub bundle: Bytes,
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut body = BytesMut::new();
    body.put_u8(mode_byte(rec.mode));
    put_varint(&mut body, rec.seq);
    put_bytes(&mut body, rec.set.as_bytes());
    put_varint(&mut body, rec.wire_bytes);
    put_bytes(&mut body, rec.bundle.as_slice());
    let body = body.freeze();
    let mut frame = Vec::with_capacity(RECORD_OVERHEAD + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&checksum(body.as_slice()).to_be_bytes());
    frame.extend_from_slice(body.as_slice());
    frame
}

fn decode_record_body(mut body: Bytes) -> Result<WalRecord, ServeError> {
    if !body.has_remaining() {
        return Err(ServeError::Truncated);
    }
    let mode = mode_of(body.get_u8()).ok_or(ServeError::Truncated)?;
    let seq = get_varint(&mut body).map_err(|_| ServeError::Truncated)?;
    let set = get_string(&mut body)?;
    let wire_bytes = get_varint(&mut body).map_err(|_| ServeError::Truncated)?;
    let bundle = get_bytes(&mut body)?;
    if body.has_remaining() {
        return Err(ServeError::Truncated);
    }
    Ok(WalRecord { set, mode, seq, wire_bytes, bundle })
}

/// The append-only ingest log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// Byte length of the valid prefix (== file length between appends).
    len: u64,
    /// Appends performed by this process — drives the crash hooks.
    appends: u64,
    crash_after: Option<u64>,
    crash_torn: bool,
}

impl Wal {
    /// Append one record and fsync it. On return the record is durable.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), ServeError> {
        self.append_frames(std::slice::from_ref(&encode_record(rec)))
    }

    /// Append a batch of encoded records with ONE write and ONE fsync —
    /// the group-commit amortization. On return every record is durable.
    ///
    /// The crash hooks count records, not flushes, so the differential
    /// sweep walks every record boundary regardless of how the batcher
    /// grouped them: if the fatal record N lands inside this batch, the
    /// records before it are written and fsynced (durable but never
    /// acked — mid-batch loss for the rest) and the process aborts.
    fn append_frames(&mut self, frames: &[Vec<u8>]) -> Result<(), ServeError> {
        if frames.is_empty() {
            return Ok(());
        }
        let first = self.appends + 1;
        let last = self.appends + frames.len() as u64;
        if let Some(n) = self.crash_after {
            if n >= first && n <= last {
                let fatal = (n - first) as usize;
                let mut buf = Vec::new();
                for f in &frames[..fatal] {
                    buf.extend_from_slice(f);
                }
                if self.crash_torn {
                    // Torn write: half of the fatal record reaches the
                    // disk, then the process dies.
                    buf.extend_from_slice(&frames[fatal][..frames[fatal].len() / 2]);
                } else {
                    buf.extend_from_slice(&frames[fatal]);
                }
                let _ = self.file.write_all(&buf);
                let _ = self.file.sync_data();
                std::process::abort();
            }
        }
        let total: usize = frames.iter().map(Vec::len).sum();
        let mut buf = Vec::with_capacity(total);
        for f in frames {
            buf.extend_from_slice(f);
        }
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        self.len += total as u64;
        self.appends += frames.len() as u64;
        Ok(())
    }

    /// Drop every record (the snapshot now covers them) and reset to a
    /// bare header.
    fn truncate_to_header(&mut self) -> Result<(), ServeError> {
        self.file.set_len(HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.file.sync_data()?;
        self.len = HEADER_LEN;
        Ok(())
    }
}

/// The log handle the server's sessions share: the open [`Wal`] behind
/// its own mutex plus the [`GroupCommit`] batcher that coalesces their
/// appends. Sessions enqueue under the store lock (so the log order is
/// the apply order) and wait for the covering fsync *outside* every
/// lock; the flush leader takes only the file mutex, so enqueuers and
/// queries never stall behind an fsync.
///
/// Lock order, where both are held: store state → batcher → file.
#[derive(Debug)]
pub struct WalShared {
    file: Mutex<Wal>,
    gc: GroupCommit<Vec<u8>>,
}

impl WalShared {
    fn new(wal: Wal) -> Self {
        Self { file: Mutex::new(wal), gc: GroupCommit::new(GROUP_MAX_RECORDS, GROUP_MAX_BYTES) }
    }

    /// Queue one record for the next group flush and return its ticket.
    /// Non-blocking — called under the store lock.
    pub fn enqueue(&self, rec: &WalRecord) -> u64 {
        let frame = encode_record(rec);
        let cost = frame.len();
        self.gc.enqueue(frame, cost)
    }

    /// Block until the flush covering `ticket` lands (leading it if
    /// nobody else is). On Ok the record — and every record enqueued
    /// before it — is durable, and its ack may be released.
    pub fn commit(&self, ticket: u64) -> Result<(), ServeError> {
        self.gc
            .commit(ticket, |frames| {
                self.file.lock().append_frames(&frames).map_err(|e| e.to_string())
            })
            .map_err(ServeError::Io)
    }

    /// Append one record synchronously with its own fsync — the
    /// single-fsync-per-record baseline (group commit disabled) and the
    /// path the durability unit tests drive.
    fn append_now(&self, rec: &WalRecord) -> Result<(), ServeError> {
        self.file.lock().append(rec)
    }

    /// Flush everything enqueued, then truncate the log to a bare
    /// header. The drain is the snapshot barrier: nothing may sit in
    /// the batcher while the file is cut, or a later flush could write
    /// records the snapshot does not cover into the wrong position.
    fn drain_and_truncate(&self) -> Result<(), ServeError> {
        self.gc
            .drain(|frames| self.file.lock().append_frames(&frames).map_err(|e| e.to_string()))
            .map_err(ServeError::Io)?;
        self.file.lock().truncate_to_header()
    }

    /// Coalescing counters for the stats endpoint.
    pub fn batch_stats(&self) -> BatchStats {
        self.gc.stats()
    }
}

/// What recovery found, for the startup report and the tests.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Sets restored from the snapshot.
    pub snapshot_sets: usize,
    /// Log records applied on top of the snapshot.
    pub replayed: u64,
    /// Log records the snapshot already covered (idempotent skip).
    pub skipped: u64,
    /// Damage found at the log tail; the valid prefix was kept.
    pub tail_error: Option<ServeError>,
}

impl RecoveryReport {
    pub fn render(&self) -> String {
        let mut s = format!(
            "recovered {} set(s) from snapshot, replayed {} wal record(s), skipped {}",
            self.snapshot_sets, self.replayed, self.skipped
        );
        if let Some(e) = &self.tail_error {
            s.push_str(&format!("; dropped damaged tail ({e})"));
        }
        s
    }
}

/// The durability layer one server instance owns: its data directory,
/// the open log, and the snapshot cadence.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    wal: Arc<WalShared>,
    snapshot_every: u64,
    since_snapshot: u64,
}

impl Durability {
    /// Open (or create) a data directory, restore the snapshot, replay
    /// the log tail into `store`, and truncate any damaged tail. The
    /// store must be freshly constructed.
    pub fn open(
        dir: &Path,
        snapshot_every: u64,
        store: &mut ProfileStore,
    ) -> Result<(Self, RecoveryReport), ServeError> {
        std::fs::create_dir_all(dir)?;
        let snapshot_sets = match read_snapshot(&dir.join(SNAP_FILE))? {
            None => 0,
            Some(snap) => {
                store.restore_counters(snap.bytes_stored, snap.ingests);
                let n = snap.sets.len();
                for s in snap.sets {
                    store.restore_set(
                        s.name,
                        s.mode,
                        s.next_seq,
                        s.epoch,
                        s.bundles,
                        s.blob_bytes,
                        s.state,
                        s.pending,
                    );
                }
                n
            }
        };
        let (wal, replayed, skipped, tail_error) = open_wal(&dir.join(WAL_FILE), store)?;
        let report = RecoveryReport { snapshot_sets, replayed, skipped, tail_error };
        Ok((
            Self {
                dir: dir.to_path_buf(),
                wal: Arc::new(WalShared::new(wal)),
                snapshot_every,
                since_snapshot: 0,
            },
            report,
        ))
    }

    /// The shared log handle, for sessions that group-commit their
    /// records outside the store lock.
    pub fn wal(&self) -> Arc<WalShared> {
        Arc::clone(&self.wal)
    }

    /// Make one prepared ingest durable with its own fsync. Called
    /// between `prepare_ingest` and `apply_ingest`; once this returns
    /// Ok the ingest survives any crash. This is the group-commit-off
    /// baseline — the batched path goes through [`Durability::wal`].
    pub fn log_ingest(
        &mut self,
        set: &str,
        ticket: IngestTicket,
        wire_bytes: u64,
        bundle: &Bytes,
    ) -> Result<(), ServeError> {
        self.wal.append_now(&WalRecord {
            set: set.to_string(),
            mode: ticket.mode,
            seq: ticket.seq,
            wire_bytes,
            bundle: bundle.clone(),
        })
    }

    /// Count one applied ingest and snapshot if the cadence says so.
    /// Returns whether a snapshot was written.
    pub fn note_applied(&mut self, store: &mut ProfileStore) -> Result<bool, ServeError> {
        self.since_snapshot += 1;
        if self.snapshot_every == 0 || self.since_snapshot < self.snapshot_every {
            return Ok(false);
        }
        self.snapshot_now(store)?;
        Ok(true)
    }

    /// Fold the store into a snapshot, land it atomically, truncate the
    /// log. Crash-ordering: tmp write + fsync, rename, dir fsync, THEN
    /// truncate — every intermediate state recovers (replay over the new
    /// snapshot is idempotent).
    pub fn snapshot_now(&mut self, store: &mut ProfileStore) -> Result<(), ServeError> {
        let raw = encode_snapshot(store)?;
        let tmp = self.dir.join(SNAP_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&raw)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAP_FILE))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.wal.drain_and_truncate()?;
        self.since_snapshot = 0;
        Ok(())
    }
}

fn open_wal(
    path: &Path,
    store: &mut ProfileStore,
) -> Result<(Wal, u64, u64, Option<ServeError>), ServeError> {
    // truncate(false): an existing log is the durable state — never clobber.
    let mut file =
        OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
    let file_len = file.metadata()?.len();
    let crash_after = std::env::var("DCP_WAL_CRASH_AFTER").ok().and_then(|v| v.parse().ok());
    let crash_torn =
        std::env::var("DCP_WAL_CRASH_MODE").map(|v| v == "torn").unwrap_or(false);

    let mut tail_error = None;
    if file_len < HEADER_LEN {
        // Empty (or torn-during-creation) file: the valid prefix is
        // empty. Lay down a fresh header.
        if file_len > 0 {
            tail_error = Some(ServeError::WalCorrupt {
                offset: 0,
                detail: format!("header torn at {file_len} byte(s)"),
            });
        }
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        let mut header = Vec::from(WAL_MAGIC);
        header.push(VERSION);
        file.write_all(&header)?;
        file.sync_data()?;
        return Ok((
            Wal { file, len: HEADER_LEN, appends: 0, crash_after, crash_torn },
            0,
            0,
            tail_error,
        ));
    }

    let mut raw = Vec::with_capacity(file_len as usize);
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut raw)?;
    if raw[..4] != WAL_MAGIC || raw[4] != VERSION {
        // Not our log: refuse rather than clobber.
        return Err(ServeError::WalCorrupt {
            offset: 0,
            detail: "bad magic or version".to_string(),
        });
    }

    let mut offset = HEADER_LEN as usize;
    let mut replayed = 0u64;
    let mut skipped = 0u64;
    while offset < raw.len() {
        let damage = |detail: &str| ServeError::WalCorrupt {
            offset: offset as u64,
            detail: detail.to_string(),
        };
        if raw.len() - offset < RECORD_OVERHEAD {
            tail_error = Some(damage("torn record frame"));
            break;
        }
        let body_len =
            u32::from_be_bytes(raw[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        if body_len as u64 > MAX_RECORD {
            tail_error = Some(damage("implausible record length"));
            break;
        }
        let sum = u64::from_be_bytes(raw[offset + 4..offset + 12].try_into().expect("8 bytes"));
        if raw.len() - offset - RECORD_OVERHEAD < body_len {
            tail_error = Some(damage("torn record body"));
            break;
        }
        let body = &raw[offset + RECORD_OVERHEAD..offset + RECORD_OVERHEAD + body_len];
        if checksum(body) != sum {
            tail_error = Some(damage("checksum mismatch"));
            break;
        }
        let mut buf = BytesMut::with_capacity(body.len());
        buf.put_slice(body);
        let rec = match decode_record_body(buf.freeze()) {
            Ok(r) => r,
            Err(_) => {
                tail_error = Some(damage("unparseable record body"));
                break;
            }
        };
        let bundle = match decode_bundle(rec.bundle.clone()) {
            Ok(b) => b,
            Err(_) => {
                tail_error = Some(damage("undecodable bundle payload"));
                break;
            }
        };
        match store.replay_ingest(&rec.set, rec.mode, rec.seq, rec.wire_bytes, bundle) {
            Ok(true) => replayed += 1,
            Ok(false) => skipped += 1,
            Err(_) => {
                // A checksum-valid record that contradicts the set's
                // sequencing discipline cannot come from a valid writer.
                tail_error = Some(damage("record contradicts set state"));
                break;
            }
        }
        offset += RECORD_OVERHEAD + body_len;
    }

    if tail_error.is_some() {
        file.set_len(offset as u64)?;
        file.sync_data()?;
    }
    file.seek(SeekFrom::Start(offset as u64))?;
    Ok((
        Wal { file, len: offset as u64, appends: 0, crash_after, crash_torn },
        replayed,
        skipped,
        tail_error,
    ))
}

struct SnapSet {
    name: String,
    mode: IngestMode,
    next_seq: u64,
    epoch: u64,
    bundles: u64,
    blob_bytes: u64,
    state: StoredBundle,
    pending: Vec<(u64, u64, StoredBundle)>,
}

struct Snapshot {
    bytes_stored: u64,
    ingests: u64,
    sets: Vec<SnapSet>,
}

fn encode_snapshot(store: &mut ProfileStore) -> Result<Vec<u8>, ServeError> {
    let dumps: Vec<SetDump> = store.dump_sets()?;
    let mut buf = BytesMut::new();
    buf.put_slice(&SNAP_MAGIC);
    buf.put_u8(VERSION);
    put_varint(&mut buf, store.bytes_stored());
    put_varint(&mut buf, store.ingests());
    put_varint(&mut buf, dumps.len() as u64);
    for d in dumps {
        put_bytes(&mut buf, d.name.as_bytes());
        buf.put_u8(mode_byte(d.mode));
        put_varint(&mut buf, d.next_seq);
        put_varint(&mut buf, d.epoch);
        put_varint(&mut buf, d.bundles);
        put_varint(&mut buf, d.blob_bytes);
        put_bytes(&mut buf, d.state.as_slice());
        put_varint(&mut buf, d.pending.len() as u64);
        for (seq, wire, raw) in d.pending {
            put_varint(&mut buf, seq);
            put_varint(&mut buf, wire);
            put_bytes(&mut buf, raw.as_slice());
        }
    }
    let mut out = Vec::from(buf.freeze().as_slice());
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_be_bytes());
    Ok(out)
}

fn read_snapshot(path: &Path) -> Result<Option<Snapshot>, ServeError> {
    let raw = match std::fs::read(path) {
        Ok(r) => r,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    // The snapshot lands by atomic rename, so unlike the log tail it is
    // all-or-nothing: any validation failure means committed data may be
    // missing, and recovery refuses to guess.
    let corrupt = |detail: &str| ServeError::SnapshotCorrupt(detail.to_string());
    if raw.len() < HEADER_LEN as usize + 8 {
        return Err(corrupt("file shorter than header"));
    }
    if raw[..4] != SNAP_MAGIC || raw[4] != VERSION {
        return Err(corrupt("bad magic or version"));
    }
    let (body, sum_raw) = raw.split_at(raw.len() - 8);
    let sum = u64::from_be_bytes(sum_raw.try_into().expect("8 bytes"));
    if checksum(body) != sum {
        return Err(corrupt("checksum mismatch"));
    }
    let mut buf = BytesMut::with_capacity(body.len() - HEADER_LEN as usize);
    buf.put_slice(&body[HEADER_LEN as usize..]);
    let mut buf = buf.freeze();
    let trunc = |_| corrupt("truncated field");
    let bytes_stored = get_varint(&mut buf).map_err(trunc)?;
    let ingests = get_varint(&mut buf).map_err(trunc)?;
    let set_count = get_varint(&mut buf).map_err(trunc)?;
    let mut sets = Vec::new();
    for _ in 0..set_count {
        let name = get_string(&mut buf).map_err(|_| corrupt("bad set name"))?;
        if !buf.has_remaining() {
            return Err(corrupt("truncated field"));
        }
        let mode = mode_of(buf.get_u8()).ok_or_else(|| corrupt("bad mode byte"))?;
        let next_seq = get_varint(&mut buf).map_err(trunc)?;
        let epoch = get_varint(&mut buf).map_err(trunc)?;
        let bundles = get_varint(&mut buf).map_err(trunc)?;
        let blob_bytes = get_varint(&mut buf).map_err(trunc)?;
        let state_raw = get_bytes(&mut buf).map_err(|_| corrupt("truncated state"))?;
        let state =
            decode_bundle(state_raw).map_err(|e| corrupt(&format!("state bundle: {e}")))?;
        let pending_count = get_varint(&mut buf).map_err(trunc)?;
        let mut pending = Vec::new();
        for _ in 0..pending_count {
            let seq = get_varint(&mut buf).map_err(trunc)?;
            let wire = get_varint(&mut buf).map_err(trunc)?;
            let raw = get_bytes(&mut buf).map_err(|_| corrupt("truncated pending"))?;
            let bundle =
                decode_bundle(raw).map_err(|e| corrupt(&format!("pending bundle: {e}")))?;
            pending.push((seq, wire, bundle));
        }
        sets.push(SnapSet { name, mode, next_seq, epoch, bundles, blob_bytes, state, pending });
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing garbage"));
    }
    Ok(Some(Snapshot { bytes_stored, ingests, sets }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use dcp_core::stored::encode_bundle;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dcp-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn bundle() -> (StoredBundle, Bytes) {
        let mut b = StoredBundle::default();
        b.stats.samples = 3;
        let raw = encode_bundle(&b);
        (b, raw)
    }

    fn durable_ingest(
        store: &mut ProfileStore,
        dur: &mut Durability,
        set: &str,
        seq: Option<u64>,
    ) {
        let (b, raw) = bundle();
        let wire = raw.len() as u64;
        let ticket = store.prepare_ingest(set, seq, wire).expect("prepare");
        dur.log_ingest(set, ticket, wire, &raw).expect("log");
        store.apply_ingest(set, ticket, wire, b);
        dur.note_applied(store).expect("note");
    }

    fn recover(dir: &Path) -> (ProfileStore, RecoveryReport) {
        let mut store = ProfileStore::new(StoreConfig::default());
        let (_dur, report) = Durability::open(dir, 0, &mut store).expect("open");
        (store, report)
    }

    #[test]
    fn log_then_recover_replays_everything() {
        let dir = tmpdir("replay");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, r) = Durability::open(&dir, 0, &mut store).expect("open");
        assert_eq!((r.snapshot_sets, r.replayed), (0, 0));
        durable_ingest(&mut store, &mut dur, "a", Some(0));
        durable_ingest(&mut store, &mut dur, "a", Some(2)); // buffered
        durable_ingest(&mut store, &mut dur, "b", None);
        drop(dur);

        let (re, report) = recover(&dir);
        assert_eq!(report.replayed, 3);
        assert!(report.tail_error.is_none());
        assert_eq!(re.epoch("a"), store.epoch("a"));
        assert_eq!(re.epoch("b"), store.epoch("b"));
        assert_eq!(re.stats_text().lines().find(|l| l.starts_with("set[")),
                   store.stats_text().lines().find(|l| l.starts_with("set[")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_log_and_replay_is_idempotent() {
        let dir = tmpdir("snap");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir, 0, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", Some(0));
        durable_ingest(&mut store, &mut dur, "a", Some(3)); // stays pending
        dur.snapshot_now(&mut store).expect("snapshot");
        assert_eq!(
            std::fs::metadata(dir.join(WAL_FILE)).expect("meta").len(),
            HEADER_LEN,
            "snapshot truncates the log"
        );
        durable_ingest(&mut store, &mut dur, "a", Some(1));
        drop(dur);

        let (mut re, report) = recover(&dir);
        assert_eq!(report.snapshot_sets, 1);
        assert_eq!(report.replayed, 1);
        assert_eq!(re.epoch("a"), store.epoch("a"));
        // The restored pending entry still commits once the gap fills.
        let (b, raw) = bundle();
        re.ingest("a", Some(2), raw.len() as u64, b).expect("fill");
        assert_eq!(re.epoch("a"), Some(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_over_untruncated_log_double_applies_nothing() {
        // The crash window between snapshot rename and log truncation:
        // recovery sees the new snapshot plus a log whose records the
        // snapshot already covers. Replay must skip them all.
        let dir = tmpdir("window");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir, 0, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", Some(0)); // commits
        durable_ingest(&mut store, &mut dur, "a", Some(3)); // stays pending
        let untruncated = std::fs::read(dir.join(WAL_FILE)).expect("read");
        dur.snapshot_now(&mut store).expect("snapshot");
        drop(dur);
        // Undo the truncation, as if the crash hit right after rename.
        std::fs::write(dir.join(WAL_FILE), &untruncated).expect("restore log");

        let (re, report) = recover(&dir);
        assert_eq!(report.snapshot_sets, 1);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.skipped, 2, "committed and pending records both skip");
        assert_eq!(re.epoch("a"), store.epoch("a"));
        assert_eq!(re.bytes_stored(), store.bytes_stored());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn dur_file_len(dir: &Path) -> u64 {
        std::fs::metadata(dir.join(WAL_FILE)).expect("meta").len()
    }

    #[test]
    fn torn_tail_recovers_valid_prefix() {
        let dir = tmpdir("torn");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir, 0, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", Some(0));
        durable_ingest(&mut store, &mut dur, "a", Some(1));
        drop(dur);
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).expect("read");
        // Every proper-prefix truncation of the second record recovers
        // exactly the first.
        let first_end = {
            let body_len =
                u32::from_be_bytes(full[5..9].try_into().expect("4")) as usize;
            5 + RECORD_OVERHEAD + body_len
        };
        for cut in first_end + 1..full.len() {
            std::fs::write(&path, &full[..cut]).expect("truncate");
            let (re, report) = recover(&dir);
            assert_eq!(report.replayed, 1, "cut at {cut}");
            assert!(
                matches!(report.tail_error, Some(ServeError::WalCorrupt { .. })),
                "cut at {cut}"
            );
            assert_eq!(re.epoch("a"), Some(1), "cut at {cut}");
            assert_eq!(dur_file_len(&dir), first_end as u64, "file truncated to prefix");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_in_the_tail_are_detected() {
        let dir = tmpdir("flip");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir, 0, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", Some(0));
        durable_ingest(&mut store, &mut dur, "a", Some(1));
        drop(dur);
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).expect("read");
        let first_end = {
            let body_len =
                u32::from_be_bytes(full[5..9].try_into().expect("4")) as usize;
            5 + RECORD_OVERHEAD + body_len
        };
        // Flip one bit in the second record's checksum and one in its
        // body: both recover only the first record. (Damaging the length
        // prefix is covered by the torn-tail sweep.)
        for pos in [first_end + 6, first_end + RECORD_OVERHEAD + 2] {
            let mut raw = full.clone();
            raw[pos] ^= 0x10;
            std::fs::write(&path, &raw).expect("write");
            let (re, report) = recover(&dir);
            assert_eq!(report.replayed, 1, "flip at {pos}");
            assert!(report.tail_error.is_some(), "flip at {pos}");
            assert_eq!(re.epoch("a"), Some(1), "flip at {pos}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_length_log_is_an_empty_prefix() {
        let dir = tmpdir("zero");
        std::fs::write(dir.join(WAL_FILE), b"").expect("write");
        let (store, report) = recover(&dir);
        assert_eq!(report.replayed, 0);
        assert!(report.tail_error.is_none(), "empty file is a clean empty log");
        assert_eq!(store.ingests(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_log_and_damaged_snapshot_are_refused() {
        let dir = tmpdir("foreign");
        std::fs::write(dir.join(WAL_FILE), b"not a wal file at all").expect("write");
        let mut store = ProfileStore::new(StoreConfig::default());
        let err = Durability::open(&dir, 0, &mut store).expect_err("refused");
        assert!(matches!(err, ServeError::WalCorrupt { offset: 0, .. }), "{err}");

        let dir2 = tmpdir("badsnap");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir2, 0, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", None);
        dur.snapshot_now(&mut store).expect("snapshot");
        drop(dur);
        let snap_path = dir2.join(SNAP_FILE);
        let mut raw = std::fs::read(&snap_path).expect("read");
        let mid = raw.len() / 2;
        raw[mid] ^= 0x01;
        std::fs::write(&snap_path, &raw).expect("write");
        let mut store = ProfileStore::new(StoreConfig::default());
        let err = Durability::open(&dir2, 0, &mut store).expect_err("refused");
        assert!(matches!(err, ServeError::SnapshotCorrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    /// The server's group-commit sequence: prepare, enqueue, apply
    /// under the (notional) store lock; commit and ack outside it.
    fn grouped_ingest(
        store: &mut ProfileStore,
        dur: &mut Durability,
        set: &str,
        seq: Option<u64>,
    ) -> u64 {
        let (b, raw) = bundle();
        let wire = raw.len() as u64;
        let ticket = store.prepare_ingest(set, seq, wire).expect("prepare");
        let t = dur.wal().enqueue(&WalRecord {
            set: set.to_string(),
            mode: ticket.mode,
            seq: ticket.seq,
            wire_bytes: wire,
            bundle: raw,
        });
        store.apply_ingest(set, ticket, wire, b);
        dur.note_applied(store).expect("note");
        t
    }

    #[test]
    fn grouped_appends_recover_identical_to_per_record_fsyncs() {
        let dir_single = tmpdir("grp-single");
        let dir_group = tmpdir("grp-batch");
        let plan: &[(&str, Option<u64>)] =
            &[("a", Some(0)), ("a", Some(2)), ("b", None), ("a", Some(1)), ("b", None)];

        let mut st_s = ProfileStore::new(StoreConfig::default());
        let (mut dur_s, _) = Durability::open(&dir_single, 0, &mut st_s).expect("open");
        for (set, seq) in plan {
            durable_ingest(&mut st_s, &mut dur_s, set, *seq);
        }

        let mut st_g = ProfileStore::new(StoreConfig::default());
        let (mut dur_g, _) = Durability::open(&dir_group, 0, &mut st_g).expect("open");
        // Enqueue the whole plan, then land it with one commit of the
        // last ticket: a single five-record flush.
        let mut last = 0;
        for (set, seq) in plan {
            last = grouped_ingest(&mut st_g, &mut dur_g, set, *seq);
        }
        dur_g.wal().commit(last).expect("commit");
        let stats = dur_g.wal().batch_stats();
        assert_eq!((stats.batches, stats.records, stats.max_batch), (1, 5, 5));
        drop((dur_s, dur_g));

        let (re_s, rep_s) = recover(&dir_single);
        let (re_g, rep_g) = recover(&dir_group);
        assert_eq!(rep_s.replayed, rep_g.replayed);
        assert_eq!(re_s.epoch("a"), re_g.epoch("a"));
        assert_eq!(re_s.epoch("b"), re_g.epoch("b"));
        assert_eq!(re_s.stats_text(), re_g.stats_text(), "byte-identical recovery");
        let _ = std::fs::remove_dir_all(&dir_single);
        let _ = std::fs::remove_dir_all(&dir_group);
    }

    #[test]
    fn snapshot_mid_batch_drains_the_batcher_first() {
        // A cadence snapshot can fire while records sit unflushed in the
        // batcher; the drain barrier must land them before the truncate,
        // and their later commit must still report durable.
        let dir = tmpdir("grp-snap");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir, 2, &mut store).expect("open");
        grouped_ingest(&mut store, &mut dur, "a", Some(0));
        let t = grouped_ingest(&mut store, &mut dur, "a", Some(1)); // cadence: snapshot fires
        assert!(dir.join(SNAP_FILE).exists());
        assert_eq!(dur_file_len(&dir), HEADER_LEN, "log truncated after drain");
        dur.wal().commit(t).expect("already durable via drain");
        drop(dur);
        let (re, report) = recover(&dir);
        assert_eq!(report.snapshot_sets, 1);
        assert_eq!(report.replayed, 0);
        assert_eq!(re.epoch("a"), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cadence_snapshots_after_every_n_ingests() {
        let dir = tmpdir("cadence");
        let mut store = ProfileStore::new(StoreConfig::default());
        let (mut dur, _) = Durability::open(&dir, 2, &mut store).expect("open");
        durable_ingest(&mut store, &mut dur, "a", None);
        assert!(!dir.join(SNAP_FILE).exists());
        durable_ingest(&mut store, &mut dur, "a", None);
        assert!(dir.join(SNAP_FILE).exists(), "second ingest hits the cadence");
        assert_eq!(dur_file_len(&dir), HEADER_LEN);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
