//! The router: one coherent query surface over N shard daemons.
//!
//! Placement is whole-set: a consistent-hash ring over the set *name*
//! ([`dcp_support::ring::HashRing`]) assigns every profile set to one
//! shard group, and that shard runs the set's entire sequential fold.
//! This is what keeps the distributed reduction tree byte-identical to
//! a single daemon — `cct::merge` is bracket-independent but
//! order-sensitive, so splitting one set's bundle stream across shards
//! would change the merged creation order. The tree simply grows one
//! more level: ranks → shard accumulators → router combiner.
//!
//! Per request:
//!
//! * **Ingest** fans to every replica of the owning shard group
//!   **concurrently** (R-way replication for read availability): each
//!   replica's leg runs on its own scoped thread, so the fan-out costs
//!   one replica round trip, not R. The first definitive response in
//!   fixed replica order is relayed — completion order never changes
//!   the answer; replicas that fail at the transport level are skipped
//!   and counted. Only if *no* replica answers does the client see
//!   [`ServeError::ShardUnreachable`].
//! * **Query** parses with the same [`crate::query::parse_query`] a
//!   daemon uses, resolves each set's owner on the ring, fetches the
//!   sets' epochs (retrying across replicas), and consults a response
//!   cache keyed on the query text plus the vector of shard epochs —
//!   the PR 5 cache, one level up. On a miss it fetches each set's
//!   [`crate::store::SetPartial`], reconstructs the accumulator
//!   (`StoredAccumulator::restore` is proven byte-identical
//!   mid-stream), and renders through the shared
//!   [`crate::query::render_view`] combiner. `sets` fans to every
//!   group and merges the name-sorted rows.
//! * Shard-typed errors (unknown set, duplicate seq, budget…) are
//!   relayed **verbatim at the wire level** — code and message exactly
//!   as the shard sent them. Re-rendering a reconstructed error would
//!   double-wrap its display text and break byte-identity with a
//!   single daemon.
//!
//! Availability posture: a replica that dies mid-conversation surfaces
//! as a transport error, the router retries the surviving replicas,
//! and the response bytes do not change (the failover e2e SIGKILLs a
//! replica mid-storm and compares against an uncrashed golden). A
//! replica that was down for writes is *not* back-filled — re-pushing
//! the stream heals it (duplicate seqs answer `DuplicateSeq`), the
//! same recovery story the durable daemon uses.

use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dcp_support::ring::HashRing;
use dcp_support::stats::LatencyHistogram;
use dcp_support::sync::Mutex;
use dcp_support::{FxHashMap, LruCache};

use crate::client::Client;
use crate::error::ServeError;
use crate::query::{parse_query, render_view, ParsedQuery, ViewQuery};
use crate::store::{decode_set_partial, CacheKey};
use crate::wire::{encode_response, read_frame, write_frame, Request, Response, MAX_FRAME};

/// Everything tunable about a router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Shard groups: `shards[g]` is the replica address list of group
    /// `g`, which owns the ring's shard id `g`.
    pub shards: Vec<Vec<String>>,
    /// Virtual nodes per shard on the placement ring.
    pub vnodes: u32,
    /// Largest frame body accepted or fetched.
    pub max_frame: u64,
    /// Socket read timeout, client-facing and shard-facing.
    pub read_timeout: Duration,
    /// Concurrent session threads.
    pub sessions: usize,
    /// Response-cache bounds (keyed on query + shard epoch vector).
    pub cache_entries: usize,
    pub cache_bytes: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            vnodes: 64,
            max_frame: MAX_FRAME,
            read_timeout: Duration::from_secs(10),
            sessions: 4,
            cache_entries: 512,
            cache_bytes: 16 * 1024 * 1024,
        }
    }
}

/// How a routed sub-request failed.
enum RouteError {
    /// A shard answered with a typed error; relay code + message
    /// verbatim so the client sees exactly what a single daemon would
    /// have sent.
    Relay(u16, String),
    /// The router itself failed (shard unreachable, ring mismatch,
    /// partial-merge failure, bad client query).
    Local(ServeError),
}

impl From<ServeError> for RouteError {
    fn from(e: ServeError) -> Self {
        RouteError::Local(e)
    }
}

/// Mutable shared state: the response cache, the per-set reconstruction
/// cache, and latency histograms.
struct Inner {
    cache: LruCache<CacheKey, String>,
    /// Reconstructed set snapshots keyed by name, valid for one shard
    /// epoch: a cold *query* (new text, same data) reuses the previous
    /// reconstruction instead of re-fetching and re-decoding the
    /// partial — the router-side twin of the shard's per-epoch snapshot
    /// cache.
    recon: FxHashMap<String, (u64, Arc<dcp_core::stored::StoredProfiles>)>,
    latency: FxHashMap<&'static str, LatencyHistogram>,
}

/// Everything the session threads share.
struct Core {
    config: RouterConfig,
    ring: HashRing,
    inner: Mutex<Inner>,
    /// Round-robin start cursor for replica selection.
    cursor: AtomicUsize,
    ingests: AtomicU64,
    queries: AtomicU64,
    /// Transport-level replica failures that were retried elsewhere.
    retries: AtomicU64,
    /// Requests that exhausted every replica of a shard.
    shard_unreachable: AtomicU64,
    /// Placement disagreements detected at fan-in.
    ring_mismatch: AtomicU64,
    /// Shard partials that failed to decode or recombine.
    partial_merge: AtomicU64,
    /// Cached reconstructions reused at render time (no decode, no
    /// restore).
    snapshot_reuse: AtomicU64,
    /// Partial fetches skipped outright because the cached
    /// reconstruction already matched the set's epoch.
    partial_reuse: AtomicU64,
    /// Class trees materialized by fresh partial reconstructions — the
    /// work the reconstruction cache exists to avoid.
    dirty_class_rebuilds: AtomicU64,
}

/// Per-session shard connection pool: one cached [`Client`] per replica
/// address, dropped (and re-dialed on next use) after any transport
/// failure.
struct Conns {
    map: FxHashMap<String, Client>,
    timeout: Duration,
}

impl Conns {
    fn call(&mut self, addr: &str, req: &Request) -> Result<Response, ServeError> {
        if !self.map.contains_key(addr) {
            let c = Client::connect_with_timeout(addr, self.timeout)?;
            self.map.insert(addr.to_string(), c);
        }
        let conn = self.map.get_mut(addr).expect("just inserted");
        match conn.call_raw(req) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                // The stream may have lost framing sync; never reuse it.
                self.map.remove(addr);
                Err(e)
            }
        }
    }
}

/// One replica's leg of a concurrent ingest fan-out: dial if no pooled
/// connection came along, make the call, and hand a still-healthy
/// connection back for re-pooling (a failed one is dropped — the
/// stream may have lost framing sync and must never be reused).
fn call_replica(
    conn: Option<Client>,
    addr: &str,
    timeout: Duration,
    req: &Request,
) -> (Option<Client>, Result<Response, ServeError>) {
    let mut c = match conn {
        Some(c) => c,
        None => match Client::connect_with_timeout(addr, timeout) {
            Ok(c) => c,
            Err(e) => return (None, Err(e)),
        },
    };
    match c.call_raw(req) {
        Ok(resp) => (Some(c), Ok(resp)),
        Err(e) => (None, Err(e)),
    }
}

impl Core {
    /// Try `req` against the replicas of `group`, starting round-robin
    /// and failing over on transport errors. Any well-formed response —
    /// OK, DATA, or a typed ERR — is definitive and returned.
    fn with_replica(&self, conns: &mut Conns, group: usize, req: &Request) -> Result<Response, RouteError> {
        let replicas = &self.config.shards[group];
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % replicas.len();
        let mut last = String::new();
        for k in 0..replicas.len() {
            let addr = &replicas[(start + k) % replicas.len()];
            match conns.call(addr, req) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    last = format!("{addr}: {e}");
                }
            }
        }
        self.shard_unreachable.fetch_add(1, Ordering::Relaxed);
        Err(RouteError::Local(ServeError::ShardUnreachable(format!(
            "shard {group}: all {} replicas failed; last: {last}",
            replicas.len()
        ))))
    }

    /// Expect OK text from a routed sub-request (epoch, sets).
    fn expect_ok(resp: Response, what: &str, group: usize) -> Result<String, RouteError> {
        match resp {
            Response::Ok(text) => Ok(text),
            Response::Err(code, msg) => Err(RouteError::Relay(code, msg)),
            Response::Data(_) => Err(RouteError::Local(ServeError::PartialMerge(format!(
                "shard {group}: binary response to a {what} request"
            )))),
        }
    }

    /// Fan one ingest to every replica of the owning group
    /// **concurrently** — the write amplification of R-way replication
    /// costs one replica round trip, not R sequential ones. Aggregation
    /// stays in fixed replica order so completion order never changes
    /// the relayed answer: first OK wins; with no OK, the first typed
    /// error is relayed; with neither, the shard is unreachable.
    fn route_ingest(&self, conns: &mut Conns, set: &str, req: &Request) -> Result<Response, RouteError> {
        self.ingests.fetch_add(1, Ordering::Relaxed);
        let group = self.ring.owner(set.as_bytes()) as usize;
        let replicas = &self.config.shards[group];
        let timeout = conns.timeout;
        // Each replica's pooled connection travels into its thread and
        // comes back to the pool if still healthy.
        let pooled: Vec<Option<Client>> =
            replicas.iter().map(|a| conns.map.remove(a.as_str())).collect();
        let outcomes: Vec<(Option<Client>, Result<Response, ServeError>)> = if replicas.len() == 1
        {
            // A single replica gains nothing from a thread spawn.
            let conn = pooled.into_iter().next().expect("one replica");
            vec![call_replica(conn, &replicas[0], timeout, req)]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = pooled
                    .into_iter()
                    .zip(replicas)
                    .map(|(conn, addr)| s.spawn(move || call_replica(conn, addr, timeout, req)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("replica thread")).collect()
            })
        };
        let mut first_ok: Option<String> = None;
        let mut first_err: Option<(u16, String)> = None;
        let mut last = String::new();
        for (addr, (conn, outcome)) in replicas.iter().zip(outcomes) {
            if let Some(c) = conn {
                conns.map.insert(addr.clone(), c);
            }
            match outcome {
                Ok(Response::Ok(text)) => {
                    if first_ok.is_none() {
                        first_ok = Some(text);
                    }
                }
                Ok(Response::Err(code, msg)) => {
                    if first_err.is_none() {
                        first_err = Some((code, msg));
                    }
                }
                Ok(Response::Data(_)) => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    last = format!("{addr}: binary response to an ingest");
                }
                Err(e) => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    last = format!("{addr}: {e}");
                }
            }
        }
        if let Some(text) = first_ok {
            return Ok(Response::Ok(text));
        }
        if let Some((code, msg)) = first_err {
            return Err(RouteError::Relay(code, msg));
        }
        self.shard_unreachable.fetch_add(1, Ordering::Relaxed);
        Err(RouteError::Local(ServeError::ShardUnreachable(format!(
            "shard {group}: all {} replicas failed; last: {last}",
            replicas.len()
        ))))
    }

    /// Fan `sets` to every group and merge the rows. Each shard lists
    /// only the sets it owns; the merged, name-sorted listing is
    /// byte-identical to a single daemon holding every set. A set
    /// listed by a group the ring does not map it to is a typed
    /// [`ServeError::RingMismatch`] — placement drift must never be
    /// papered over.
    fn route_sets(&self, conns: &mut Conns) -> Result<String, RouteError> {
        let req = Request::Query("sets".to_string());
        let mut rows: Vec<(String, String)> = Vec::new();
        for group in 0..self.config.shards.len() {
            let resp = self.with_replica(conns, group, &req)?;
            let text = Self::expect_ok(resp, "sets", group)?;
            let body = text.strip_prefix("PROFILE SETS\n").ok_or_else(|| {
                self.partial_merge.fetch_add(1, Ordering::Relaxed);
                ServeError::PartialMerge(format!("shard {group}: malformed sets listing"))
            })?;
            for line in body.lines() {
                let name = line.split(" bundles=").next().unwrap_or(line).to_string();
                let owner = self.ring.owner(name.as_bytes()) as usize;
                if owner != group {
                    self.ring_mismatch.fetch_add(1, Ordering::Relaxed);
                    return Err(RouteError::Local(ServeError::RingMismatch(format!(
                        "set '{name}' listed by shard {group} but owned by shard {owner}"
                    ))));
                }
                rows.push((name, line.to_string()));
            }
        }
        rows.sort();
        let mut out = String::from("PROFILE SETS\n");
        for (_, line) in rows {
            out.push_str(&line);
            out.push('\n');
        }
        Ok(out)
    }

    /// Scatter-gather one view query: epochs → cache → partials →
    /// reconstruct → the shared combiner.
    fn route_view(&self, conns: &mut Conns, q: &str, view: &ViewQuery) -> Result<String, RouteError> {
        let groups: Vec<usize> =
            view.sets.iter().map(|s| self.ring.owner(s.as_bytes()) as usize).collect();
        // Resolve every set's epoch first: the epoch vector is the
        // cache key, so a warm query never moves partial bytes at all.
        let mut epochs = [0u64; 2];
        for (i, (set, group)) in view.sets.iter().zip(&groups).enumerate() {
            let resp = self.with_replica(conns, *group, &Request::Epoch(set.clone()))?;
            let text = Self::expect_ok(resp, "epoch", *group)?;
            epochs[i] = text.trim().parse().map_err(|_| {
                self.partial_merge.fetch_add(1, Ordering::Relaxed);
                ServeError::PartialMerge(format!(
                    "shard {group}: malformed epoch response {text:?} for set '{set}'"
                ))
            })?;
        }
        let key = CacheKey { query: q.to_string(), epochs };
        if let Some(hit) = self.inner.lock().cache.get(&key).cloned() {
            return Ok(hit);
        }
        // Miss: resolve each set's renderable snapshot. A cached
        // reconstruction at the set's current epoch is reused without
        // moving partial bytes at all; otherwise the partial is fetched
        // and rebuilt. An ingest may race ahead of the epoch fetch; the
        // partial's own epoch is what the response actually reflects, so
        // the cache entry is keyed under it.
        let mut snaps = Vec::with_capacity(view.sets.len());
        for (i, (set, group)) in view.sets.iter().zip(&groups).enumerate() {
            let cached = {
                let inner = self.inner.lock();
                inner
                    .recon
                    .get(set.as_str())
                    .filter(|(e, _)| *e == epochs[i])
                    .map(|(_, s)| Arc::clone(s))
            };
            if let Some(snap) = cached {
                self.partial_reuse.fetch_add(1, Ordering::Relaxed);
                self.snapshot_reuse.fetch_add(1, Ordering::Relaxed);
                snaps.push(snap);
                continue;
            }
            let resp = self.with_replica(conns, *group, &Request::Partial(set.clone()))?;
            let bytes = match resp {
                Response::Data(bytes) => bytes,
                Response::Err(code, msg) => return Err(RouteError::Relay(code, msg)),
                Response::Ok(_) => {
                    self.partial_merge.fetch_add(1, Ordering::Relaxed);
                    return Err(RouteError::Local(ServeError::PartialMerge(format!(
                        "shard {group}: text response to a partial request for set '{set}'"
                    ))));
                }
            };
            let partial = decode_set_partial(bytes).map_err(|e| {
                self.partial_merge.fetch_add(1, Ordering::Relaxed);
                ServeError::PartialMerge(format!("set '{set}' from shard {group}: {e}"))
            })?;
            epochs[i] = partial.epoch;
            // A racing session may have reconstructed this epoch while
            // the partial was in flight.
            let cached = {
                let inner = self.inner.lock();
                inner
                    .recon
                    .get(set.as_str())
                    .filter(|(e, _)| *e == partial.epoch)
                    .map(|(_, s)| Arc::clone(s))
            };
            if let Some(snap) = cached {
                self.snapshot_reuse.fetch_add(1, Ordering::Relaxed);
                snaps.push(snap);
                continue;
            }
            let profiles = partial.reconstruct().map_err(|e| {
                self.partial_merge.fetch_add(1, Ordering::Relaxed);
                ServeError::PartialMerge(format!("set '{set}' from shard {group}: {e}"))
            })?;
            self.dirty_class_rebuilds
                .fetch_add(dcp_core::metrics::CLASSES as u64, Ordering::Relaxed);
            let snap = Arc::new(profiles);
            self.inner
                .lock()
                .recon
                .insert(set.clone(), (partial.epoch, Arc::clone(&snap)));
            snaps.push(snap);
        }
        let response = render_view(&view.plan, &snaps);
        let key = CacheKey { query: q.to_string(), epochs };
        let mut inner = self.inner.lock();
        let cost = key.query.len() + response.len();
        inner.cache.insert(key, response.clone(), cost);
        Ok(response)
    }

    fn route_query(&self, conns: &mut Conns, q: &str) -> Result<String, RouteError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        match parse_query(q)? {
            ParsedQuery::Sets => self.route_sets(conns),
            ParsedQuery::View(view) => self.route_view(conns, q, &view),
        }
    }

    /// Proxy an epoch or partial request to the owning shard, verbatim
    /// both ways — a router can therefore stand in for a shard, and
    /// smart clients can resolve placement through it.
    fn route_proxy(&self, conns: &mut Conns, set: &str, req: &Request) -> Result<Response, RouteError> {
        let group = self.ring.owner(set.as_bytes()) as usize;
        self.with_replica(conns, group, req)
    }

    /// The router's own stats report. Deterministic ordering, same
    /// shape as the daemon's (`ROUTER STATS` header instead).
    fn stats_text(&self) -> String {
        let mut out = String::from("ROUTER STATS\n");
        out.push_str(&format!("shards {}\n", self.config.shards.len()));
        let replicas: Vec<String> =
            self.config.shards.iter().map(|g| g.len().to_string()).collect();
        out.push_str(&format!("replicas {}\n", replicas.join(",")));
        out.push_str(&format!("ring_vnodes {}\n", self.ring.vnodes()));
        out.push_str(&format!("ring_points {}\n", self.ring.point_count()));
        out.push_str(&format!("ingests {}\n", self.ingests.load(Ordering::Relaxed)));
        out.push_str(&format!("queries {}\n", self.queries.load(Ordering::Relaxed)));
        out.push_str(&format!("retries {}\n", self.retries.load(Ordering::Relaxed)));
        out.push_str(&format!(
            "shard_unreachable {}\n",
            self.shard_unreachable.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("ring_mismatch {}\n", self.ring_mismatch.load(Ordering::Relaxed)));
        out.push_str(&format!("partial_merge {}\n", self.partial_merge.load(Ordering::Relaxed)));
        out.push_str(&format!("snapshot_reuse {}\n", self.snapshot_reuse.load(Ordering::Relaxed)));
        out.push_str(&format!("partial_reuse {}\n", self.partial_reuse.load(Ordering::Relaxed)));
        out.push_str(&format!(
            "dirty_class_rebuilds {}\n",
            self.dirty_class_rebuilds.load(Ordering::Relaxed)
        ));
        let inner = self.inner.lock();
        out.push_str(&format!(
            "cache_hits {}\ncache_misses {}\ncache_hit_rate {:.3}\ncache_entries {}\ncache_bytes {}\n",
            inner.cache.hits(),
            inner.cache.misses(),
            inner.cache.hit_rate(),
            inner.cache.len(),
            inner.cache.bytes()
        ));
        let mut kinds: Vec<&&'static str> = inner.latency.keys().collect();
        kinds.sort();
        for k in kinds {
            out.push_str(&format!("latency_us[{k}] {}\n", inner.latency[*k].render()));
        }
        for (g, group) in self.config.shards.iter().enumerate() {
            out.push_str(&format!("shard[{g}] replicas={} {}\n", group.len(), group.join(",")));
        }
        out
    }

    fn record(&self, kind: &'static str, micros: u64) {
        self.inner.lock().latency.entry(kind).or_default().record(micros);
    }
}

/// A bound, not-yet-serving router. `bind` then `local_addr` then
/// `serve` (which blocks until a SHUTDOWN frame arrives). Shutting the
/// router down drains only the router; shard daemons keep serving.
pub struct Router {
    listener: TcpListener,
    core: Arc<Core>,
    shutdown: Arc<AtomicBool>,
}

impl Router {
    /// Validate the topology and bind the listener. An invalid ring
    /// configuration is a typed [`ServeError::RingMismatch`]: a router
    /// that started with a broken topology would misplace every set.
    pub fn bind(config: RouterConfig) -> Result<Self, ServeError> {
        if config.shards.is_empty() {
            return Err(ServeError::RingMismatch("router needs at least one shard group".into()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for (g, group) in config.shards.iter().enumerate() {
            if group.is_empty() {
                return Err(ServeError::RingMismatch(format!("shard group {g} has no replicas")));
            }
            for addr in group {
                if !seen.insert(addr.clone()) {
                    return Err(ServeError::RingMismatch(format!(
                        "replica address {addr} appears twice in the topology"
                    )));
                }
            }
        }
        if config.vnodes == 0 {
            return Err(ServeError::RingMismatch("ring needs at least one virtual node".into()));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let ring = HashRing::new(config.shards.len() as u32, config.vnodes);
        let cache = LruCache::new(config.cache_entries, config.cache_bytes);
        let core = Core {
            config,
            ring,
            inner: Mutex::new(Inner {
                cache,
                recon: FxHashMap::default(),
                latency: FxHashMap::default(),
            }),
            cursor: AtomicUsize::new(0),
            ingests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            shard_unreachable: AtomicU64::new(0),
            ring_mismatch: AtomicU64::new(0),
            partial_merge: AtomicU64::new(0),
            snapshot_reuse: AtomicU64::new(0),
            partial_reuse: AtomicU64::new(0),
            dirty_class_rebuilds: AtomicU64::new(0),
        };
        Ok(Self {
            listener,
            core: Arc::new(core),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<String, ServeError> {
        Ok(self.listener.local_addr()?.to_string())
    }

    /// A handle that flips the drain flag from another thread.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The shard group the ring assigns `set` to (tests and tooling).
    pub fn owner_of(&self, set: &str) -> usize {
        self.core.ring.owner(set.as_bytes()) as usize
    }

    /// Accept and serve until shutdown, then drain — the same bounded
    /// session-pool shape as [`crate::server::Server::serve`].
    pub fn serve(self) -> Result<(), ServeError> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let sessions = self.core.config.sessions.max(1);
        let mut workers = Vec::with_capacity(sessions);
        for _ in 0..sessions {
            let rx = Arc::clone(&rx);
            let core = Arc::clone(&self.core);
            let shutdown = Arc::clone(&self.shutdown);
            workers.push(std::thread::spawn(move || loop {
                let next = {
                    let guard = rx.lock();
                    guard.recv()
                };
                match next {
                    Ok(stream) => handle_conn(stream, &core, &shutdown),
                    Err(_) => return, // sender dropped: drain complete
                }
            }));
        }
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

fn respond(stream: &mut TcpStream, resp: &Response) -> Result<(), ServeError> {
    let (k, body) = encode_response(resp);
    write_frame(stream, k, &body)
}

fn err_response(e: &ServeError) -> Response {
    Response::Err(e.code(), e.to_string())
}

fn route_err(e: RouteError) -> Response {
    match e {
        RouteError::Relay(code, msg) => Response::Err(code, msg),
        RouteError::Local(e) => err_response(&e),
    }
}

/// Serve one client connection until clean EOF, protocol error, or
/// shutdown. Shard connections are pooled per session and re-dialed
/// lazily after any transport failure.
fn handle_conn(mut stream: TcpStream, core: &Arc<Core>, shutdown: &Arc<AtomicBool>) {
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(core.config.read_timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let mut conns = Conns { map: FxHashMap::default(), timeout: core.config.read_timeout };
    loop {
        let frame = match read_frame(&mut stream, core.config.max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(e) => {
                let _ = respond(&mut stream, &err_response(&e));
                return;
            }
        };
        let req = match crate::wire::parse_request(frame.0, frame.1) {
            Ok(r) => r,
            Err(e) => {
                let _ = respond(&mut stream, &err_response(&e));
                return;
            }
        };
        let draining = shutdown.load(Ordering::SeqCst);
        let resp = match req {
            Request::Ping => Response::Ok("pong".to_string()),
            Request::Stats => {
                let start = Instant::now();
                let text = core.stats_text();
                core.record("stats", start.elapsed().as_micros() as u64);
                Response::Ok(text)
            }
            Request::Query(q) => {
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let out = core.route_query(&mut conns, &q);
                    core.record("query", start.elapsed().as_micros() as u64);
                    match out {
                        Ok(text) => Response::Ok(text),
                        Err(e) => route_err(e),
                    }
                }
            }
            ref req @ Request::Ingest { ref set, .. } => {
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let out = core.route_ingest(&mut conns, set, req);
                    core.record("ingest", start.elapsed().as_micros() as u64);
                    match out {
                        Ok(resp) => resp,
                        Err(e) => route_err(e),
                    }
                }
            }
            ref req @ (Request::Epoch(ref set) | Request::Partial(ref set)) => {
                if draining {
                    err_response(&ServeError::ShuttingDown)
                } else {
                    let start = Instant::now();
                    let out = core.route_proxy(&mut conns, set, req);
                    core.record("proxy", start.elapsed().as_micros() as u64);
                    match out {
                        Ok(resp) => resp,
                        Err(e) => route_err(e),
                    }
                }
            }
            Request::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                let _ = respond(&mut stream, &Response::Ok("draining".to_string()));
                return;
            }
        };
        if respond(&mut stream, &resp).is_err() {
            return;
        }
    }
}
