//! The client library: one blocking TCP connection speaking the frame
//! protocol. Used by `memgaze serve`/`memgaze query`, the load
//! generator, and the tests; anything the server can say maps back to
//! a typed [`ServeError`] here.

use std::net::TcpStream;
use std::time::Duration;

use dcp_support::bytes::Bytes;

use crate::error::ServeError;
use crate::wire::{encode_request, parse_response, read_frame, write_frame, Request, Response, MAX_FRAME};

/// A connected client. One request/response in flight at a time.
pub struct Client {
    stream: TcpStream,
    max_frame: u64,
}

impl Client {
    /// Connect with a default 10 s read timeout.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with an explicit read timeout — the client-side guard
    /// against a server that stops mid-frame.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        // Request/response over small frames: Nagle only adds latency.
        stream.set_nodelay(true)?;
        Ok(Self { stream, max_frame: MAX_FRAME })
    }

    /// One round trip: write the request frame, read exactly one
    /// response frame. Server-side ERR frames come back as the typed
    /// error they encode.
    pub fn call(&mut self, req: &Request) -> Result<String, ServeError> {
        match self.call_raw(req)? {
            Response::Ok(text) => Ok(text),
            Response::Err(code, msg) => Err(ServeError::from_wire(code, msg)),
            // A binary body where text was expected means the peer is
            // answering a different request than we sent.
            Response::Data(_) => Err(ServeError::BadKind(crate::wire::kind::DATA)),
        }
    }

    /// One round trip returning the raw response variant (the `PARTIAL`
    /// path needs the binary `DATA` body).
    pub fn call_raw(&mut self, req: &Request) -> Result<Response, ServeError> {
        let (k, body) = encode_request(req);
        write_frame(&mut self.stream, k, &body)?;
        let (rk, rbody) = read_frame(&mut self.stream, self.max_frame)?
            .ok_or_else(|| ServeError::Io("connection closed before response".to_string()))?;
        parse_response(rk, rbody)
    }

    pub fn ping(&mut self) -> Result<String, ServeError> {
        self.call(&Request::Ping)
    }

    /// Send one encoded DCPB bundle into `set`. Pass `seq` to pin a
    /// deterministic merge position under concurrent ingest.
    pub fn ingest(&mut self, set: &str, seq: Option<u64>, bundle: Bytes) -> Result<String, ServeError> {
        self.call(&Request::Ingest { set: set.to_string(), seq, bundle })
    }

    pub fn query(&mut self, q: &str) -> Result<String, ServeError> {
        self.call(&Request::Query(q.to_string()))
    }

    pub fn stats(&mut self) -> Result<String, ServeError> {
        self.call(&Request::Stats)
    }

    /// The named set's commit epoch on this shard (router cache keying).
    pub fn epoch(&mut self, set: &str) -> Result<u64, ServeError> {
        let text = self.call(&Request::Epoch(set.to_string()))?;
        text.trim()
            .parse()
            .map_err(|_| ServeError::Io(format!("malformed epoch response {text:?}")))
    }

    /// Fetch the named set's shard-local partial (an encoded
    /// [`crate::store::SetPartial`] payload).
    pub fn partial(&mut self, set: &str) -> Result<Bytes, ServeError> {
        match self.call_raw(&Request::Partial(set.to_string()))? {
            Response::Data(bytes) => Ok(bytes),
            Response::Err(code, msg) => Err(ServeError::from_wire(code, msg)),
            Response::Ok(_) => Err(ServeError::BadKind(crate::wire::kind::OK)),
        }
    }

    /// Ask the server to drain and exit. The OK response means the
    /// drain has begun, not that it has finished.
    pub fn shutdown(&mut self) -> Result<String, ServeError> {
        self.call(&Request::Shutdown)
    }
}
