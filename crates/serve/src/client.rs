//! The client library: one blocking TCP connection speaking the frame
//! protocol. Used by `memgaze serve`/`memgaze query`, the load
//! generator, and the tests; anything the server can say maps back to
//! a typed [`ServeError`] here.
//!
//! [`Client::pipeline`] opens a windowed ingest: up to W pushes stay
//! outstanding on the wire before the oldest ack is awaited, which
//! keeps the server's group-commit batcher fed from a single
//! connection. The protocol needs no new frames for this — responses
//! arrive in strict request order — but the client verifies each ack
//! against its oldest outstanding push and surfaces any pairing
//! violation as [`ServeError::AckMismatch`] rather than trusting a
//! stream it can no longer line up.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::Duration;

use dcp_support::bytes::Bytes;

use crate::error::ServeError;
use crate::wire::{
    encode_request, parse_ingest_ack, parse_response, read_frame, write_frame, Request, Response,
    MAX_FRAME,
};

/// A connected client. One request/response in flight at a time.
pub struct Client {
    stream: TcpStream,
    max_frame: u64,
}

impl Client {
    /// Connect with a default 10 s read timeout.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with an explicit read timeout — the client-side guard
    /// against a server that stops mid-frame.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        // Request/response over small frames: Nagle only adds latency.
        stream.set_nodelay(true)?;
        Ok(Self { stream, max_frame: MAX_FRAME })
    }

    /// One round trip: write the request frame, read exactly one
    /// response frame. Server-side ERR frames come back as the typed
    /// error they encode.
    pub fn call(&mut self, req: &Request) -> Result<String, ServeError> {
        match self.call_raw(req)? {
            Response::Ok(text) => Ok(text),
            Response::Err(code, msg) => Err(ServeError::from_wire(code, msg)),
            // A binary body where text was expected means the peer is
            // answering a different request than we sent.
            Response::Data(_) => Err(ServeError::BadKind(crate::wire::kind::DATA)),
        }
    }

    /// One round trip returning the raw response variant (the `PARTIAL`
    /// path needs the binary `DATA` body).
    pub fn call_raw(&mut self, req: &Request) -> Result<Response, ServeError> {
        let (k, body) = encode_request(req);
        write_frame(&mut self.stream, k, &body)?;
        let (rk, rbody) = read_frame(&mut self.stream, self.max_frame)?
            .ok_or_else(|| ServeError::Io("connection closed before response".to_string()))?;
        parse_response(rk, rbody)
    }

    pub fn ping(&mut self) -> Result<String, ServeError> {
        self.call(&Request::Ping)
    }

    /// Send one encoded DCPB bundle into `set`. Pass `seq` to pin a
    /// deterministic merge position under concurrent ingest.
    pub fn ingest(&mut self, set: &str, seq: Option<u64>, bundle: Bytes) -> Result<String, ServeError> {
        self.call(&Request::Ingest { set: set.to_string(), seq, bundle })
    }

    pub fn query(&mut self, q: &str) -> Result<String, ServeError> {
        self.call(&Request::Query(q.to_string()))
    }

    pub fn stats(&mut self) -> Result<String, ServeError> {
        self.call(&Request::Stats)
    }

    /// The named set's commit epoch on this shard (router cache keying).
    pub fn epoch(&mut self, set: &str) -> Result<u64, ServeError> {
        let text = self.call(&Request::Epoch(set.to_string()))?;
        text.trim()
            .parse()
            .map_err(|_| ServeError::Io(format!("malformed epoch response {text:?}")))
    }

    /// Fetch the named set's shard-local partial (an encoded
    /// [`crate::store::SetPartial`] payload).
    pub fn partial(&mut self, set: &str) -> Result<Bytes, ServeError> {
        match self.call_raw(&Request::Partial(set.to_string()))? {
            Response::Data(bytes) => Ok(bytes),
            Response::Err(code, msg) => Err(ServeError::from_wire(code, msg)),
            Response::Ok(_) => Err(ServeError::BadKind(crate::wire::kind::OK)),
        }
    }

    /// Ask the server to drain and exit. The OK response means the
    /// drain has begun, not that it has finished.
    pub fn shutdown(&mut self) -> Result<String, ServeError> {
        self.call(&Request::Shutdown)
    }

    /// Start a windowed ingest: up to `window` pushes outstanding
    /// before the oldest ack must be read. The pipeline borrows the
    /// connection; [`IngestPipeline::drain`] returns it to strict
    /// request/response use.
    pub fn pipeline(&mut self, window: usize) -> IngestPipeline<'_> {
        IngestPipeline { client: self, window: window.max(1), outstanding: VecDeque::new() }
    }
}

/// One acknowledged ingest: the slot the server committed it at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    pub set: String,
    pub seq: u64,
    pub epoch: u64,
}

/// A windowed ingest in progress. Every push is matched FIFO against
/// the response stream; per-bundle refusals (budget, duplicate seq, …)
/// come back as `Err` *items* and the window keeps moving, while
/// transport or pairing failures are the outer `Err` and poison the
/// connection.
pub struct IngestPipeline<'a> {
    client: &'a mut Client,
    window: usize,
    /// Oldest-first (set, seq) of pushes whose acks are still owed.
    outstanding: VecDeque<(String, Option<u64>)>,
}

impl IngestPipeline<'_> {
    /// Send one bundle. If the window was full, first reads (and
    /// returns) the oldest outstanding ack — so the caller sees every
    /// ack exactly once across `push` and `drain`.
    #[allow(clippy::type_complexity)]
    pub fn push(
        &mut self,
        set: &str,
        seq: Option<u64>,
        bundle: Bytes,
    ) -> Result<Option<Result<Ack, ServeError>>, ServeError> {
        let acked = if self.outstanding.len() >= self.window {
            Some(self.read_ack()?)
        } else {
            None
        };
        let (k, body) =
            encode_request(&Request::Ingest { set: set.to_string(), seq, bundle });
        write_frame(&mut self.client.stream, k, &body)?;
        self.outstanding.push_back((set.to_string(), seq));
        Ok(acked)
    }

    /// Pushes sent but not yet acknowledged. After a transport error a
    /// caller that wants at-least-once delivery must re-send this many
    /// trailing bundles (the server's duplicate-seq refusal makes the
    /// retry idempotent for explicit sequences).
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Await every outstanding ack, oldest first, ending the window.
    pub fn drain(&mut self) -> Result<Vec<Result<Ack, ServeError>>, ServeError> {
        let mut acks = Vec::with_capacity(self.outstanding.len());
        while !self.outstanding.is_empty() {
            acks.push(self.read_ack()?);
        }
        Ok(acks)
    }

    /// Read one response and pair it with the oldest outstanding push.
    /// Inner `Err` = the server refused that bundle (typed, relayed
    /// verbatim); outer `Err` = the stream itself can no longer be
    /// trusted (transport failure or an ack that does not match).
    fn read_ack(&mut self) -> Result<Result<Ack, ServeError>, ServeError> {
        let (expect_set, expect_seq) =
            self.outstanding.pop_front().expect("read_ack with nothing outstanding");
        let (k, body) = read_frame(&mut self.client.stream, self.client.max_frame)?
            .ok_or_else(|| ServeError::Io("connection closed before ack".to_string()))?;
        match parse_response(k, body)? {
            Response::Ok(text) => {
                let (set, seq, epoch) = parse_ingest_ack(&text).ok_or_else(|| {
                    ServeError::AckMismatch(format!("unparseable ack body {text:?}"))
                })?;
                if set != expect_set {
                    return Err(ServeError::AckMismatch(format!(
                        "ack for set '{set}' where set '{expect_set}' was next"
                    )));
                }
                if let Some(want) = expect_seq {
                    if seq != want {
                        return Err(ServeError::AckMismatch(format!(
                            "ack for seq {seq} where seq {want} was next in set '{set}'"
                        )));
                    }
                }
                Ok(Ok(Ack { set, seq, epoch }))
            }
            Response::Err(code, msg) => Ok(Err(ServeError::from_wire(code, msg))),
            // A binary body can only answer PARTIAL, which a pipeline
            // never sends.
            Response::Data(_) => Err(ServeError::AckMismatch(
                "binary DATA frame where an ingest ack was expected".to_string(),
            )),
        }
    }
}
