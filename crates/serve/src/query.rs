//! The query engine: a small verb language over stored profile sets,
//! rendered with the exact same view code the in-process CLI uses.
//!
//! Grammar (whitespace-separated):
//!
//! ```text
//! ranking  <set> <metric> [limit]
//! topdown  <set> <class> <metric>
//! bottomup <set> <metric>
//! flat     <set> <class> <metric> [limit]
//! vars     <set> <metric>
//! diff     <set-a> <set-b> <metric>
//! export   <set> <class>
//! sets
//! ```
//!
//! Metrics: `samples latency remote tlb stores`; classes: `static heap
//! stack unknown nomem` — the same spellings the `memgaze` CLI accepts.
//!
//! View responses are served through the store's LRU cache keyed by the
//! query text plus the epoch of every set it reads, so an ingest can
//! never surface a stale response. `sets` and `stats` are cheap and
//! always live.

use std::sync::Arc;

use dcp_cct::diff as cct_diff;
use dcp_core::metrics::{Metric, StorageClass};
use dcp_core::stored::StoredProfiles;
use dcp_core::view::{bottom_up, flat, ranking, top_down, TopDownOpts};
use dcp_core::{compare_report, ProfileView, SymbolSource};

use crate::error::ServeError;
use crate::store::{CacheKey, ProfileStore};

fn metric_of(s: &str) -> Result<Metric, ServeError> {
    match s {
        "samples" => Ok(Metric::Samples),
        "latency" => Ok(Metric::Latency),
        "remote" => Ok(Metric::Remote),
        "tlb" => Ok(Metric::TlbMiss),
        "stores" => Ok(Metric::Stores),
        other => Err(ServeError::BadQuery(format!(
            "unknown metric '{other}' (want samples|latency|remote|tlb|stores)"
        ))),
    }
}

fn class_of(s: &str) -> Result<StorageClass, ServeError> {
    match s {
        "static" => Ok(StorageClass::Static),
        "heap" => Ok(StorageClass::Heap),
        "stack" => Ok(StorageClass::Stack),
        "unknown" => Ok(StorageClass::Unknown),
        "nomem" => Ok(StorageClass::NoMem),
        other => Err(ServeError::BadQuery(format!(
            "unknown class '{other}' (want static|heap|stack|unknown|nomem)"
        ))),
    }
}

fn limit_of(s: Option<&&str>, default: usize) -> Result<usize, ServeError> {
    match s {
        None => Ok(default),
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| ServeError::BadQuery(format!("bad limit '{raw}'"))),
    }
}

fn arity(args: &[&str], min: usize, max: usize, usage: &str) -> Result<(), ServeError> {
    if args.len() < min || args.len() > max {
        return Err(ServeError::BadQuery(format!("usage: {usage}")));
    }
    Ok(())
}

/// Render the variable-centric view: every variable with its full
/// metric vector and allocation metadata, sorted by `metric`.
fn vars_view(p: &StoredProfiles, metric: Metric) -> String {
    let vars = p.variables(metric);
    let mut out = String::new();
    out.push_str(&format!("VARIABLES by {} ({} variables)\n", metric.name(), vars.len()));
    out.push_str(&format!(
        "{:<28} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
        "VARIABLE", "SAMPLES", "LATENCY", "REMOTE", "TLB", "STORES", "ALLOCS", "ZEROED", "BYTES"
    ));
    for v in vars {
        out.push_str(&format!(
            "{:<28} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
            v.name,
            v.metrics[Metric::Samples.col()],
            v.metrics[Metric::Latency.col()],
            v.metrics[Metric::Remote.col()],
            v.metrics[Metric::TlbMiss.col()],
            v.metrics[Metric::Stores.col()],
            v.alloc_count,
            v.alloc_zeroed,
            v.alloc_bytes,
        ));
    }
    out
}

/// Render a two-profile diff: the variable-level differential report
/// (byte-identical to `memgaze --compare`), then the structural
/// tree-path diff from [`dcp_cct::diff`] over the heap trees.
fn diff_view(a: &StoredProfiles, b: &StoredProfiles, metric: Metric) -> String {
    let mut out = compare_report(a, b, metric);
    let d = cct_diff::diff(a.class_tree(StorageClass::Heap), b.class_tree(StorageClass::Heap));
    let col = metric.col();
    out.push_str(&format!(
        "\nSTRUCTURAL (heap tree): {} paths, net {} {:+}, {} appeared, {} disappeared\n",
        d.entries.len(),
        metric.name(),
        d.total_delta(col),
        d.appeared().count(),
        d.disappeared().count(),
    ));
    for e in d.ranked(col).into_iter().take(10) {
        if e.delta(col) == 0 {
            continue;
        }
        let path: Vec<String> = e.path.iter().map(|&f| b.frame_name(f)).collect();
        out.push_str(&format!("  {:+12}  {}\n", e.delta(col), path.join(" / ")));
    }
    out
}

fn export_hex(p: &StoredProfiles, class: StorageClass) -> String {
    let raw = p.export(class);
    let mut out = String::with_capacity(raw.len() * 2);
    for &b in raw.as_slice() {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Execute one query against the store, going through the response
/// cache for view queries.
pub fn handle_query(store: &mut ProfileStore, q: &str) -> Result<String, ServeError> {
    let words: Vec<&str> = q.split_whitespace().collect();
    let (&verb, args) = words
        .split_first()
        .ok_or_else(|| ServeError::BadQuery("empty query".into()))?;

    // `sets` is live, never cached.
    if verb == "sets" {
        arity(args, 0, 0, "sets")?;
        let mut out = String::from("PROFILE SETS\n");
        for r in store.list_sets() {
            out.push_str(&format!(
                "{} bundles={} epoch={} gap={} gap_bytes={}\n",
                r.name, r.bundles, r.epoch, r.gap, r.gap_bytes
            ));
        }
        return Ok(out);
    }

    // Everything else names one or two sets as its first argument(s);
    // resolve epochs up front so the cache key is fixed before any
    // rendering work happens.
    let set_count = if verb == "diff" { 2 } else { 1 };
    if args.len() < set_count {
        return Err(ServeError::BadQuery(format!("'{verb}' needs {set_count} profile set(s)")));
    }
    let mut epochs = [0u64; 2];
    for (i, e) in epochs.iter_mut().enumerate().take(set_count) {
        *e = store
            .epoch(args[i])
            .ok_or_else(|| ServeError::UnknownSet(args[i].to_string()))?;
    }
    let key = CacheKey { query: q.to_string(), epochs };
    if let Some(hit) = store.cache_get(&key) {
        return Ok(hit);
    }

    let response = match verb {
        "ranking" => {
            arity(args, 2, 3, "ranking <set> <metric> [limit]")?;
            let snap = store.snapshot(args[0])?;
            ranking(&*snap, metric_of(args[1])?, limit_of(args.get(2), 12)?)
        }
        "topdown" => {
            arity(args, 3, 3, "topdown <set> <class> <metric>")?;
            let snap = store.snapshot(args[0])?;
            top_down(&*snap, class_of(args[1])?, metric_of(args[2])?, TopDownOpts::default())
        }
        "bottomup" => {
            arity(args, 2, 2, "bottomup <set> <metric>")?;
            let snap = store.snapshot(args[0])?;
            bottom_up(&*snap, metric_of(args[1])?)
        }
        "flat" => {
            arity(args, 3, 4, "flat <set> <class> <metric> [limit]")?;
            let snap = store.snapshot(args[0])?;
            flat(&*snap, class_of(args[1])?, metric_of(args[2])?, limit_of(args.get(3), 12)?)
        }
        "vars" => {
            arity(args, 2, 2, "vars <set> <metric>")?;
            let snap = store.snapshot(args[0])?;
            vars_view(&snap, metric_of(args[1])?)
        }
        "diff" => {
            arity(args, 3, 3, "diff <set-a> <set-b> <metric>")?;
            let before: Arc<StoredProfiles> = store.snapshot(args[0])?;
            let after: Arc<StoredProfiles> = store.snapshot(args[1])?;
            diff_view(&before, &after, metric_of(args[2])?)
        }
        "export" => {
            arity(args, 2, 2, "export <set> <class>")?;
            let snap = store.snapshot(args[0])?;
            export_hex(&snap, class_of(args[1])?)
        }
        other => {
            return Err(ServeError::BadQuery(format!(
                "unknown verb '{other}' (want ranking|topdown|bottomup|flat|vars|diff|export|sets)"
            )))
        }
    };
    store.cache_put(key, response.clone());
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use dcp_core::stored::{encode_bundle, StoredBundle};

    fn store_with_set(name: &str) -> ProfileStore {
        let mut st = ProfileStore::new(StoreConfig::default());
        let b = StoredBundle::default();
        let wire = encode_bundle(&b).len() as u64;
        st.ingest(name, None, wire, b).expect("ingest");
        st
    }

    #[test]
    fn empty_set_queries_are_defined() {
        // An ingested-but-empty set (no profile blobs) renders every
        // view without error — the served face of the
        // merge_encoded(vec![], w) edge case.
        let mut st = store_with_set("empty");
        for q in [
            "ranking empty samples",
            "topdown empty heap latency",
            "bottomup empty remote",
            "flat empty heap tlb 5",
            "vars empty stores",
            "diff empty empty samples",
            "export empty heap",
            "sets",
        ] {
            let resp = handle_query(&mut st, q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert!(!resp.is_empty(), "{q} produced empty response");
        }
    }

    #[test]
    fn bad_queries_are_typed() {
        let mut st = store_with_set("a");
        for q in ["", "bogus a samples", "ranking a watts", "topdown a mars samples",
                  "ranking a samples not-a-number", "ranking a", "ranking a samples 1 2"] {
            match handle_query(&mut st, q) {
                Err(ServeError::BadQuery(_)) => {}
                other => panic!("{q:?}: expected BadQuery, got {other:?}"),
            }
        }
        assert_eq!(
            handle_query(&mut st, "ranking nope samples"),
            Err(ServeError::UnknownSet("nope".into()))
        );
    }

    #[test]
    fn view_queries_hit_the_cache_until_ingest() {
        let mut st = store_with_set("a");
        let q = "ranking a samples";
        let r1 = handle_query(&mut st, q).expect("first");
        let r2 = handle_query(&mut st, q).expect("second");
        assert_eq!(r1, r2);
        let stats = st.stats_text();
        assert!(stats.contains("cache_hits 1"), "{stats}");
        // Ingest bumps the epoch: same query misses, then re-caches.
        let b = StoredBundle::default();
        let wire = encode_bundle(&b).len() as u64;
        st.ingest("a", None, wire, b).expect("ingest");
        handle_query(&mut st, q).expect("after ingest");
        let stats = st.stats_text();
        assert!(stats.contains("cache_hits 1"), "{stats}");
        assert!(stats.contains("cache_misses 2"), "{stats}");
    }
}
