//! The query engine: a small verb language over stored profile sets,
//! rendered with the exact same view code the in-process CLI uses.
//!
//! Grammar (whitespace-separated):
//!
//! ```text
//! ranking  <set> <metric> [limit]
//! topdown  <set> <class> <metric>
//! bottomup <set> <metric>
//! flat     <set> <class> <metric> [limit]
//! vars     <set> <metric>
//! diff     <set-a> <set-b> <metric>
//! export   <set> <class>
//! sets
//! ```
//!
//! Metrics: `samples latency remote tlb stores`; classes: `static heap
//! stack unknown nomem` — the same spellings the `memgaze` CLI accepts.
//!
//! Execution is factored into a **partial-result/combiner API** so the
//! single daemon and the sharded router share one renderer:
//!
//! * [`parse_query`] turns the text into a [`ParsedQuery`] — the plan
//!   ([`ViewPlan`]) plus the sets it reads — with no store access;
//! * each shard's partial for a set is its accumulator state (see
//!   [`crate::store::SetPartial`]), produced by the same `cct::merge`
//!   reduction tree that folds rank profiles post-mortem;
//! * [`render_view`] is a pure function from the plan and the
//!   reconstructed per-set snapshots to the response text.
//!
//! A single daemon's snapshots come straight from its store; the router
//! reconstructs them from fetched partials. Both paths therefore render
//! byte-identical responses by construction. The combiner split is also
//! the prerequisite the ROADMAP names for incremental view maintenance.
//!
//! View responses are served through the store's LRU cache keyed by the
//! query text plus the epoch of every set it reads, so an ingest can
//! never surface a stale response. `sets` and `stats` are cheap and
//! always live.

use std::sync::Arc;

use dcp_cct::diff as cct_diff;
use dcp_core::metrics::{Metric, StorageClass};
use dcp_core::stored::StoredProfiles;
use dcp_core::view::{bottom_up, flat, ranking, top_down, TopDownOpts};
use dcp_core::{compare_report, ProfileView, SymbolSource};

use crate::error::ServeError;
use crate::store::{CacheKey, ProfileStore, SetRow};

fn metric_of(s: &str) -> Result<Metric, ServeError> {
    match s {
        "samples" => Ok(Metric::Samples),
        "latency" => Ok(Metric::Latency),
        "remote" => Ok(Metric::Remote),
        "tlb" => Ok(Metric::TlbMiss),
        "stores" => Ok(Metric::Stores),
        other => Err(ServeError::BadQuery(format!(
            "unknown metric '{other}' (want samples|latency|remote|tlb|stores)"
        ))),
    }
}

fn class_of(s: &str) -> Result<StorageClass, ServeError> {
    match s {
        "static" => Ok(StorageClass::Static),
        "heap" => Ok(StorageClass::Heap),
        "stack" => Ok(StorageClass::Stack),
        "unknown" => Ok(StorageClass::Unknown),
        "nomem" => Ok(StorageClass::NoMem),
        other => Err(ServeError::BadQuery(format!(
            "unknown class '{other}' (want static|heap|stack|unknown|nomem)"
        ))),
    }
}

fn limit_of(s: Option<&&str>, default: usize) -> Result<usize, ServeError> {
    match s {
        None => Ok(default),
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| ServeError::BadQuery(format!("bad limit '{raw}'"))),
    }
}

fn arity(args: &[&str], min: usize, max: usize, usage: &str) -> Result<(), ServeError> {
    if args.len() < min || args.len() > max {
        return Err(ServeError::BadQuery(format!("usage: {usage}")));
    }
    Ok(())
}

/// One view's execution plan: everything but the data it reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewPlan {
    Ranking { metric: Metric, limit: usize },
    TopDown { class: StorageClass, metric: Metric },
    BottomUp { metric: Metric },
    Flat { class: StorageClass, metric: Metric, limit: usize },
    Vars { metric: Metric },
    Diff { metric: Metric },
    Export { class: StorageClass },
}

/// A parsed view query: the plan plus the profile sets it reads, in
/// argument order (one set, or two for `diff`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewQuery {
    pub plan: ViewPlan,
    pub sets: Vec<String>,
}

/// Any parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedQuery {
    /// The live set listing — never cached, fanned to every shard.
    Sets,
    /// A view over one or two sets' snapshots.
    View(ViewQuery),
}

/// Parse one query with no store access: verbs, arity, metric/class
/// spellings, and limits are all validated here, so a daemon and a
/// router refuse exactly the same malformed queries.
pub fn parse_query(q: &str) -> Result<ParsedQuery, ServeError> {
    let words: Vec<&str> = q.split_whitespace().collect();
    let (&verb, args) = words
        .split_first()
        .ok_or_else(|| ServeError::BadQuery("empty query".into()))?;
    if verb == "sets" {
        arity(args, 0, 0, "sets")?;
        return Ok(ParsedQuery::Sets);
    }
    let set_count = if verb == "diff" { 2 } else { 1 };
    if args.len() < set_count {
        return Err(ServeError::BadQuery(format!("'{verb}' needs {set_count} profile set(s)")));
    }
    let plan = match verb {
        "ranking" => {
            arity(args, 2, 3, "ranking <set> <metric> [limit]")?;
            ViewPlan::Ranking { metric: metric_of(args[1])?, limit: limit_of(args.get(2), 12)? }
        }
        "topdown" => {
            arity(args, 3, 3, "topdown <set> <class> <metric>")?;
            ViewPlan::TopDown { class: class_of(args[1])?, metric: metric_of(args[2])? }
        }
        "bottomup" => {
            arity(args, 2, 2, "bottomup <set> <metric>")?;
            ViewPlan::BottomUp { metric: metric_of(args[1])? }
        }
        "flat" => {
            arity(args, 3, 4, "flat <set> <class> <metric> [limit]")?;
            ViewPlan::Flat {
                class: class_of(args[1])?,
                metric: metric_of(args[2])?,
                limit: limit_of(args.get(3), 12)?,
            }
        }
        "vars" => {
            arity(args, 2, 2, "vars <set> <metric>")?;
            ViewPlan::Vars { metric: metric_of(args[1])? }
        }
        "diff" => {
            arity(args, 3, 3, "diff <set-a> <set-b> <metric>")?;
            ViewPlan::Diff { metric: metric_of(args[2])? }
        }
        "export" => {
            arity(args, 2, 2, "export <set> <class>")?;
            ViewPlan::Export { class: class_of(args[1])? }
        }
        other => {
            return Err(ServeError::BadQuery(format!(
                "unknown verb '{other}' (want ranking|topdown|bottomup|flat|vars|diff|export|sets)"
            )))
        }
    };
    let sets = args[..set_count].iter().map(|s| s.to_string()).collect();
    Ok(ParsedQuery::View(ViewQuery { plan, sets }))
}

/// Render the `sets` listing from per-set rows. The router combines
/// shard rows (each shard lists only the sets it owns) and renders the
/// union through this same function — name-sorted rows make the merged
/// listing byte-identical to a single daemon holding every set.
pub fn render_sets(rows: &[SetRow]) -> String {
    let mut out = String::from("PROFILE SETS\n");
    for r in rows {
        out.push_str(&format!(
            "{} bundles={} epoch={} gap={} gap_bytes={}\n",
            r.name, r.bundles, r.epoch, r.gap, r.gap_bytes
        ));
    }
    out
}

/// The combiner: render one plan over its per-set snapshots, in the
/// order [`ViewQuery::sets`] listed them. Pure — no store, no cache —
/// so the daemon (local snapshots) and the router (snapshots
/// reconstructed from shard partials) produce identical bytes from
/// identical states.
///
/// # Panics
/// Panics if `snaps` does not match the plan's arity; both callers
/// resolve exactly the sets the parser returned.
pub fn render_view(plan: &ViewPlan, snaps: &[Arc<StoredProfiles>]) -> String {
    match plan {
        ViewPlan::Ranking { metric, limit } => ranking(&*snaps[0], *metric, *limit),
        ViewPlan::TopDown { class, metric } => {
            top_down(&*snaps[0], *class, *metric, TopDownOpts::default())
        }
        ViewPlan::BottomUp { metric } => bottom_up(&*snaps[0], *metric),
        ViewPlan::Flat { class, metric, limit } => flat(&*snaps[0], *class, *metric, *limit),
        ViewPlan::Vars { metric } => vars_view(&snaps[0], *metric),
        ViewPlan::Diff { metric } => diff_view(&snaps[0], &snaps[1], *metric),
        ViewPlan::Export { class } => export_hex(&snaps[0], *class),
    }
}

/// Render the variable-centric view: every variable with its full
/// metric vector and allocation metadata, sorted by `metric`.
fn vars_view(p: &StoredProfiles, metric: Metric) -> String {
    let vars = p.variables(metric);
    let mut out = String::new();
    out.push_str(&format!("VARIABLES by {} ({} variables)\n", metric.name(), vars.len()));
    out.push_str(&format!(
        "{:<28} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
        "VARIABLE", "SAMPLES", "LATENCY", "REMOTE", "TLB", "STORES", "ALLOCS", "ZEROED", "BYTES"
    ));
    for v in vars {
        out.push_str(&format!(
            "{:<28} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
            v.name,
            v.metrics[Metric::Samples.col()],
            v.metrics[Metric::Latency.col()],
            v.metrics[Metric::Remote.col()],
            v.metrics[Metric::TlbMiss.col()],
            v.metrics[Metric::Stores.col()],
            v.alloc_count,
            v.alloc_zeroed,
            v.alloc_bytes,
        ));
    }
    out
}

/// Render a two-profile diff: the variable-level differential report
/// (byte-identical to `memgaze --compare`), then the structural
/// tree-path diff from [`dcp_cct::diff`] over the heap trees.
fn diff_view(a: &StoredProfiles, b: &StoredProfiles, metric: Metric) -> String {
    let mut out = compare_report(a, b, metric);
    let d = cct_diff::diff(a.class_tree(StorageClass::Heap), b.class_tree(StorageClass::Heap));
    let col = metric.col();
    out.push_str(&format!(
        "\nSTRUCTURAL (heap tree): {} paths, net {} {:+}, {} appeared, {} disappeared\n",
        d.entries.len(),
        metric.name(),
        d.total_delta(col),
        d.appeared().count(),
        d.disappeared().count(),
    ));
    for e in d.ranked(col).into_iter().take(10) {
        if e.delta(col) == 0 {
            continue;
        }
        let path: Vec<String> = e.path.iter().map(|&f| b.frame_name(f)).collect();
        out.push_str(&format!("  {:+12}  {}\n", e.delta(col), path.join(" / ")));
    }
    out
}

fn export_hex(p: &StoredProfiles, class: StorageClass) -> String {
    let raw = p.export(class);
    let mut out = String::with_capacity(raw.len() * 2);
    for &b in raw.as_slice() {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Execute one query against the store, going through the response
/// cache for view queries: parse, resolve epochs (the cache key),
/// snapshot, and hand the plan to the shared combiner.
pub fn handle_query(store: &mut ProfileStore, q: &str) -> Result<String, ServeError> {
    let view = match parse_query(q)? {
        ParsedQuery::Sets => return Ok(render_sets(&store.list_sets())),
        ParsedQuery::View(v) => v,
    };
    // Resolve epochs up front so the cache key is fixed before any
    // rendering work happens.
    let mut epochs = [0u64; 2];
    for (i, set) in view.sets.iter().enumerate() {
        epochs[i] = store.epoch(set).ok_or_else(|| ServeError::UnknownSet(set.clone()))?;
    }
    let key = CacheKey { query: q.to_string(), epochs };
    if let Some(hit) = store.cache_get(&key) {
        return Ok(hit);
    }
    let snaps: Vec<Arc<StoredProfiles>> = view
        .sets
        .iter()
        .map(|set| store.snapshot(set))
        .collect::<Result<_, _>>()?;
    let response = render_view(&view.plan, &snaps);
    store.cache_put(key, response.clone());
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use dcp_core::stored::{encode_bundle, StoredBundle};

    fn store_with_set(name: &str) -> ProfileStore {
        let mut st = ProfileStore::new(StoreConfig::default());
        let b = StoredBundle::default();
        let wire = encode_bundle(&b).len() as u64;
        st.ingest(name, None, wire, b).expect("ingest");
        st
    }

    #[test]
    fn empty_set_queries_are_defined() {
        // An ingested-but-empty set (no profile blobs) renders every
        // view without error — the served face of the
        // merge_encoded(vec![], w) edge case.
        let mut st = store_with_set("empty");
        for q in [
            "ranking empty samples",
            "topdown empty heap latency",
            "bottomup empty remote",
            "flat empty heap tlb 5",
            "vars empty stores",
            "diff empty empty samples",
            "export empty heap",
            "sets",
        ] {
            let resp = handle_query(&mut st, q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert!(!resp.is_empty(), "{q} produced empty response");
        }
    }

    #[test]
    fn bad_queries_are_typed() {
        let mut st = store_with_set("a");
        for q in ["", "bogus a samples", "ranking a watts", "topdown a mars samples",
                  "ranking a samples not-a-number", "ranking a", "ranking a samples 1 2"] {
            match handle_query(&mut st, q) {
                Err(ServeError::BadQuery(_)) => {}
                other => panic!("{q:?}: expected BadQuery, got {other:?}"),
            }
        }
        assert_eq!(
            handle_query(&mut st, "ranking nope samples"),
            Err(ServeError::UnknownSet("nope".into()))
        );
    }

    #[test]
    fn parse_is_store_free_and_render_is_pure() {
        // The partial-result/combiner contract: parsing needs no store,
        // and rendering the same plan over the same snapshot twice
        // yields identical bytes (what the router's byte-identity to a
        // single daemon reduces to).
        let parsed = parse_query("diff a b remote").expect("parse");
        assert_eq!(
            parsed,
            ParsedQuery::View(ViewQuery {
                plan: ViewPlan::Diff { metric: Metric::Remote },
                sets: vec!["a".into(), "b".into()],
            })
        );
        let mut st = store_with_set("a");
        let snap = st.snapshot("a").expect("snap");
        let plan = ViewPlan::Ranking { metric: Metric::Samples, limit: 12 };
        let once = render_view(&plan, &[Arc::clone(&snap)]);
        let twice = render_view(&plan, &[snap]);
        assert_eq!(once, twice);
        // And the daemon path renders exactly the combiner's bytes.
        assert_eq!(handle_query(&mut st, "ranking a samples").expect("query"), once);
    }

    #[test]
    fn view_queries_hit_the_cache_until_ingest() {
        let mut st = store_with_set("a");
        let q = "ranking a samples";
        let r1 = handle_query(&mut st, q).expect("first");
        let r2 = handle_query(&mut st, q).expect("second");
        assert_eq!(r1, r2);
        let stats = st.stats_text();
        assert!(stats.contains("cache_hits 1"), "{stats}");
        // Ingest bumps the epoch: same query misses, then re-caches.
        let b = StoredBundle::default();
        let wire = encode_bundle(&b).len() as u64;
        st.ingest("a", None, wire, b).expect("ingest");
        handle_query(&mut st, q).expect("after ingest");
        let stats = st.stats_text();
        assert!(stats.contains("cache_hits 1"), "{stats}");
        assert!(stats.contains("cache_misses 2"), "{stats}");
    }
}
