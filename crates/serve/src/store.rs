//! The profile store: named sets with incremental ingest, a byte
//! budget, epochs, and the response cache.
//!
//! Each named set wraps a [`StoredAccumulator`] plus a reorder buffer.
//! Clients may assign sequence numbers to their bundles; the store
//! commits only the contiguous sequence prefix, buffering gaps, so a
//! fixed (set, seq) assignment produces the same merged bytes no matter
//! how the network interleaves connections — the incremental-merge
//! invariant extends through the server (the loopback test pins it).
//! Ingests without a sequence take server arrival order.
//!
//! Every committed ingest advances the set's **epoch**. Query responses
//! are cached keyed by `(query, epoch)`; an ingest therefore never
//! serves a stale response — superseded entries simply age out of the
//! LRU. A byte budget bounds the store: an ingest that would exceed it
//! is rejected with a typed error before any state changes.

use std::collections::BTreeMap;
use std::sync::Arc;

use dcp_core::stored::{StoredAccumulator, StoredBundle, StoredProfiles};
use dcp_support::stats::LatencyHistogram;
use dcp_support::{FxHashMap, LruCache};

use crate::error::ServeError;

/// Store sizing.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Cap on total ingested bundle bytes across all sets.
    pub byte_budget: u64,
    /// Response cache entry cap.
    pub cache_entries: usize,
    /// Response cache byte cap.
    pub cache_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            byte_budget: 256 * 1024 * 1024,
            cache_entries: 512,
            cache_bytes: 16 * 1024 * 1024,
        }
    }
}

/// Cache key: the query text plus the epoch of each profile set it
/// reads (0 for unused slots). A new epoch keys new entries; old ones
/// can never hit again and age out of the LRU.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub query: String,
    pub epochs: [u64; 2],
}

struct ProfileSet {
    acc: StoredAccumulator,
    /// Out-of-order bundles waiting for the sequence gap to fill.
    pending: BTreeMap<u64, StoredBundle>,
    /// Next sequence number to commit.
    next_seq: u64,
    epoch: u64,
    snapshot: Option<Arc<StoredProfiles>>,
}

impl ProfileSet {
    fn new() -> Self {
        Self {
            acc: StoredAccumulator::new(),
            pending: BTreeMap::new(),
            next_seq: 0,
            epoch: 0,
            snapshot: None,
        }
    }
}

/// The whole server state behind one lock: sets, cache, counters.
pub struct ProfileStore {
    config: StoreConfig,
    sets: FxHashMap<String, ProfileSet>,
    cache: LruCache<CacheKey, String>,
    bytes_stored: u64,
    ingests: u64,
    queries: u64,
    latency: FxHashMap<&'static str, LatencyHistogram>,
}

impl ProfileStore {
    pub fn new(config: StoreConfig) -> Self {
        let cache = LruCache::new(config.cache_entries, config.cache_bytes);
        Self {
            config,
            sets: FxHashMap::default(),
            cache,
            bytes_stored: 0,
            ingests: 0,
            queries: 0,
            latency: FxHashMap::default(),
        }
    }

    /// Add one decoded bundle to `set`. `wire_bytes` is the encoded
    /// bundle size, charged against the byte budget. Returns the
    /// committed-or-buffered sequence number and the set's epoch after
    /// the ingest.
    pub fn ingest(
        &mut self,
        set: &str,
        seq: Option<u64>,
        wire_bytes: u64,
        bundle: StoredBundle,
    ) -> Result<(u64, u64), ServeError> {
        if self.bytes_stored.saturating_add(wire_bytes) > self.config.byte_budget {
            return Err(ServeError::BudgetExceeded {
                budget: self.config.byte_budget,
                stored: self.bytes_stored,
                requested: wire_bytes,
            });
        }
        let entry = self.sets.entry(set.to_string()).or_insert_with(ProfileSet::new);
        let seq = match seq {
            Some(s) => {
                if s < entry.next_seq || entry.pending.contains_key(&s) {
                    return Err(ServeError::DuplicateSeq(s));
                }
                s
            }
            // Arrival order: the next number no explicit ingest claimed.
            None => entry.pending.last_key_value().map_or(entry.next_seq, |(&k, _)| k + 1),
        };
        entry.pending.insert(seq, bundle);
        // Commit the contiguous prefix in sequence order — the only
        // order that ever reaches the accumulator.
        while let Some(b) = entry.pending.remove(&entry.next_seq) {
            entry.acc.ingest(b);
            entry.next_seq += 1;
            entry.epoch += 1;
            entry.snapshot = None;
        }
        self.bytes_stored += wire_bytes;
        self.ingests += 1;
        Ok((seq, entry.epoch))
    }

    /// The set's current epoch (0 if it does not exist — the empty set
    /// is served as epoch 0 rather than an error on the query path that
    /// wants it; resolution of unknown names is the query layer's call).
    pub fn epoch(&self, set: &str) -> Option<u64> {
        self.sets.get(set).map(|s| s.epoch)
    }

    /// A renderable snapshot of `set` at its current epoch. Snapshots
    /// are cached per epoch; folding happens at most once per epoch.
    pub fn snapshot(&mut self, set: &str) -> Result<Arc<StoredProfiles>, ServeError> {
        let entry = self
            .sets
            .get_mut(set)
            .ok_or_else(|| ServeError::UnknownSet(set.to_string()))?;
        if let Some(s) = &entry.snapshot {
            return Ok(Arc::clone(s));
        }
        // Bundles were validated at decode time, so a fold error here is
        // unreachable in practice; surface it typed anyway.
        let snap = Arc::new(entry.acc.snapshot()?);
        entry.snapshot = Some(Arc::clone(&snap));
        Ok(snap)
    }

    /// Sorted `(name, bundles, epoch, gap)` rows for the `sets` query.
    pub fn list_sets(&self) -> Vec<(String, u64, u64, usize)> {
        let mut rows: Vec<(String, u64, u64, usize)> = self
            .sets
            .iter()
            .map(|(n, s)| (n.clone(), s.acc.bundles(), s.epoch, s.pending.len()))
            .collect();
        rows.sort();
        rows
    }

    pub fn cache_get(&mut self, key: &CacheKey) -> Option<String> {
        self.cache.get(key).cloned()
    }

    pub fn cache_put(&mut self, key: CacheKey, response: String) {
        let cost = key.query.len() + response.len();
        self.cache.insert(key, response, cost);
    }

    /// Record one served request of `kind` taking `micros`.
    pub fn record(&mut self, kind: &'static str, micros: u64) {
        self.latency.entry(kind).or_default().record(micros);
        if kind == "query" {
            self.queries += 1;
        }
    }

    pub fn note_query(&mut self) {
        self.queries += 1;
    }

    /// The `/metrics`-style stats report. Deterministic ordering; the
    /// counters themselves obviously advance between calls.
    pub fn stats_text(&self) -> String {
        let mut out = String::from("SERVE STATS\n");
        out.push_str(&format!("ingests {}\n", self.ingests));
        out.push_str(&format!("queries {}\n", self.queries));
        let merges: u64 = self.sets.values().map(|s| s.acc.folds()).sum();
        out.push_str(&format!("merges {}\n", merges));
        out.push_str(&format!("bytes_stored {}\n", self.bytes_stored));
        out.push_str(&format!("byte_budget {}\n", self.config.byte_budget));
        out.push_str(&format!("sets {}\n", self.sets.len()));
        out.push_str(&format!(
            "cache_hits {}\ncache_misses {}\ncache_hit_rate {:.3}\ncache_entries {}\ncache_bytes {}\n",
            self.cache.hits(),
            self.cache.misses(),
            self.cache.hit_rate(),
            self.cache.len(),
            self.cache.bytes()
        ));
        let mut kinds: Vec<&&'static str> = self.latency.keys().collect();
        kinds.sort();
        for k in kinds {
            out.push_str(&format!("latency_us[{k}] {}\n", self.latency[*k].render()));
        }
        for (name, bundles, epoch, gap) in self.list_sets() {
            out.push_str(&format!("set[{name}] bundles={bundles} epoch={epoch} gap={gap}\n"));
        }
        out
    }

    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    pub fn ingests(&self) -> u64 {
        self.ingests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::metrics::StorageClass;
    use dcp_core::stored::encode_bundle;

    fn bundle() -> (StoredBundle, u64) {
        // A metadata-only bundle is enough to drive the store machinery.
        let mut b = StoredBundle::default();
        b.stats.samples = 1;
        let wire = encode_bundle(&b).len() as u64;
        (b, wire)
    }

    #[test]
    fn out_of_order_seqs_commit_in_order() {
        let mut st = ProfileStore::new(StoreConfig::default());
        let (b, w) = bundle();
        // seq 1 arrives first: buffered, epoch stays 0.
        let (s1, e1) = st.ingest("a", Some(1), w, b.clone()).expect("buffered");
        assert_eq!((s1, e1), (1, 0));
        // seq 0 fills the gap: both commit, epoch jumps to 2.
        let (s0, e0) = st.ingest("a", Some(0), w, b.clone()).expect("commits");
        assert_eq!((s0, e0), (0, 2));
        let snap = st.snapshot("a").expect("snapshot");
        assert_eq!(snap.stats().samples, 2);
    }

    #[test]
    fn duplicate_seq_is_typed() {
        let mut st = ProfileStore::new(StoreConfig::default());
        let (b, w) = bundle();
        st.ingest("a", Some(0), w, b.clone()).expect("first");
        assert_eq!(st.ingest("a", Some(0), w, b.clone()), Err(ServeError::DuplicateSeq(0)));
        // Buffered duplicates are caught too.
        st.ingest("a", Some(5), w, b.clone()).expect("buffered");
        assert_eq!(st.ingest("a", Some(5), w, b), Err(ServeError::DuplicateSeq(5)));
    }

    #[test]
    fn budget_rejection_is_typed_and_mutation_free() {
        let (b, w) = bundle();
        let mut st = ProfileStore::new(StoreConfig {
            byte_budget: w * 2,
            ..StoreConfig::default()
        });
        st.ingest("a", None, w, b.clone()).expect("fits");
        st.ingest("a", None, w, b.clone()).expect("fits");
        let err = st.ingest("a", None, w, b).expect_err("over budget");
        assert!(matches!(err, ServeError::BudgetExceeded { .. }));
        assert_eq!(st.ingests(), 2);
        assert_eq!(st.bytes_stored(), w * 2);
        assert_eq!(st.epoch("a"), Some(2));
    }

    #[test]
    fn snapshot_is_cached_per_epoch_and_invalidated_on_ingest() {
        let mut st = ProfileStore::new(StoreConfig::default());
        let (b, w) = bundle();
        st.ingest("a", None, w, b.clone()).expect("ingest");
        let s1 = st.snapshot("a").expect("snap");
        let s2 = st.snapshot("a").expect("snap again");
        assert!(Arc::ptr_eq(&s1, &s2), "same epoch reuses the snapshot");
        st.ingest("a", None, w, b).expect("ingest");
        let s3 = st.snapshot("a").expect("snap after ingest");
        assert!(!Arc::ptr_eq(&s1, &s3), "new epoch, new snapshot");
        assert!(s3.export(StorageClass::Heap).len() > 0);
    }

    #[test]
    fn unknown_set_is_typed() {
        let mut st = ProfileStore::new(StoreConfig::default());
        assert_eq!(st.snapshot("nope").err(), Some(ServeError::UnknownSet("nope".into())));
    }

    #[test]
    fn response_cache_hits_by_epoch() {
        let mut st = ProfileStore::new(StoreConfig::default());
        let k0 = CacheKey { query: "ranking a latency".into(), epochs: [1, 0] };
        assert!(st.cache_get(&k0).is_none());
        st.cache_put(k0.clone(), "resp".into());
        assert_eq!(st.cache_get(&k0).as_deref(), Some("resp"));
        // A new epoch is a different key: miss.
        let k1 = CacheKey { query: "ranking a latency".into(), epochs: [2, 0] };
        assert!(st.cache_get(&k1).is_none());
        let stats = st.stats_text();
        assert!(stats.contains("cache_hits 1"), "{stats}");
        assert!(stats.contains("cache_misses 2"), "{stats}");
    }
}
