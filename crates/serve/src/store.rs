//! The profile store: named sets with incremental ingest, a byte
//! budget, epochs, and the response cache.
//!
//! Each named set wraps a [`StoredAccumulator`] plus a reorder buffer.
//! A set commits to one **sequencing discipline** on its first ingest:
//! *client-assigned* sequence numbers (the store commits only the
//! contiguous sequence prefix, buffering gaps, so a fixed (set, seq)
//! assignment produces the same merged bytes no matter how the network
//! interleaves connections) or *arrival order* (every ingest is
//! assigned the next commit slot and commits immediately — an
//! arrival-order ingest can never be stranded behind a gap). Mixing the
//! two in one set is a typed error: assigning arrival-order bundles a
//! slot behind someone else's gap would silently withhold them from
//! every query, which is exactly the bug this rule removed.
//!
//! The reorder buffer is bounded: out-of-order bytes held for an unfilled
//! gap are capped per set (`pending_cap`), refunded as the gap fills, and
//! reported in `stats_text` — one stalled client cannot hold budget
//! hostage forever.
//!
//! Every committed ingest advances the set's **epoch**. Query responses
//! are cached keyed by `(query, epoch)`; an ingest therefore never
//! serves a stale response — superseded entries simply age out of the
//! LRU. A byte budget bounds the store: an ingest that would exceed it
//! is rejected with a typed error before any state changes.
//!
//! Ingest is split into [`prepare_ingest`](ProfileStore::prepare_ingest)
//! (every check, no mutation) and
//! [`apply_ingest`](ProfileStore::apply_ingest) (mutation, infallible)
//! so the durability layer in [`crate::wal`] can slot the write-ahead
//! append between them. Under group commit that "append" is an enqueue
//! into the shared WAL batcher: validate, enqueue, mutate — and the ack
//! waits outside the store lock for the batched fsync that covers the
//! record. A prepared-and-applied ingest may therefore be briefly
//! visible to queries before it is durable, but it is never *acked*
//! first, which is the exact contract the kill-anywhere differential
//! checks (an unacked ingest is allowed to vanish in a crash; an acked
//! one never does). With group commit off, the strict validate → fsync
//! → mutate ordering is preserved.

use std::collections::BTreeMap;
use std::sync::Arc;

use dcp_cct::codec::{get_slice, get_varint, put_varint};
use dcp_cct::CodecError;
use dcp_core::stored::{
    decode_bundle, encode_bundle, StoredAccumulator, StoredBundle, StoredProfiles,
};
use dcp_support::bytes::{Bytes, BytesMut};
use dcp_support::stats::LatencyHistogram;
use dcp_support::{FxHashMap, LruCache};

use crate::error::ServeError;

/// Store sizing.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Cap on total ingested bundle bytes across all sets.
    pub byte_budget: u64,
    /// Cap on out-of-order bytes buffered per set awaiting a gap fill.
    pub pending_cap: u64,
    /// Response cache entry cap.
    pub cache_entries: usize,
    /// Response cache byte cap.
    pub cache_bytes: usize,
    /// Serve snapshots and partials through the incremental read path
    /// (shared trees, cached per-class encodings). `false` restores the
    /// pre-incremental deep-clone/re-encode behavior — byte-identical
    /// output, old cost — as the differential baseline for the bench.
    pub incremental_read: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            byte_budget: 256 * 1024 * 1024,
            pending_cap: 64 * 1024 * 1024,
            cache_entries: 512,
            cache_bytes: 16 * 1024 * 1024,
            incremental_read: true,
        }
    }
}

/// Cache key: the query text plus the epoch of each profile set it
/// reads (0 for unused slots). A new epoch keys new entries; old ones
/// can never hit again and age out of the LRU.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub query: String,
    pub epochs: [u64; 2],
}

/// The sequencing discipline a set committed to on first ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Server assigns the next commit slot; commits immediately.
    Arrival,
    /// Client assigns sequence numbers; gaps buffer.
    Explicit,
}

/// A validated-but-not-applied ingest: the resolved commit slot and the
/// discipline it was resolved under. Produced by
/// [`ProfileStore::prepare_ingest`], consumed by
/// [`ProfileStore::apply_ingest`]; the WAL logs exactly these fields so
/// replay re-applies the same slot deterministically.
#[derive(Debug, Clone, Copy)]
pub struct IngestTicket {
    pub mode: IngestMode,
    pub seq: u64,
}

struct ProfileSet {
    acc: StoredAccumulator,
    /// Out-of-order bundles (with their charged wire bytes) waiting for
    /// the sequence gap to fill.
    pending: BTreeMap<u64, (StoredBundle, u64)>,
    /// Sum of the wire bytes currently held in `pending`.
    pending_bytes: u64,
    /// Next sequence number to commit.
    next_seq: u64,
    epoch: u64,
    mode: IngestMode,
    snapshot: Option<Arc<StoredProfiles>>,
    /// Encoded [`SetPartial`] for the current epoch (router scatter-
    /// gather); invalidated together with `snapshot` on every commit.
    partial: Option<Bytes>,
}

impl ProfileSet {
    fn new(mode: IngestMode) -> Self {
        Self {
            acc: StoredAccumulator::new(),
            pending: BTreeMap::new(),
            pending_bytes: 0,
            next_seq: 0,
            epoch: 0,
            mode,
            snapshot: None,
            partial: None,
        }
    }
}

/// One row of [`ProfileStore::list_sets`].
pub struct SetRow {
    pub name: String,
    pub bundles: u64,
    pub epoch: u64,
    pub gap: usize,
    pub gap_bytes: u64,
}

/// Everything the durability layer persists about one set: identity,
/// sequencing state, the folded accumulator re-encoded as one bundle,
/// and the raw reorder buffer.
pub struct SetDump {
    pub name: String,
    pub mode: IngestMode,
    pub next_seq: u64,
    pub epoch: u64,
    pub bundles: u64,
    pub blob_bytes: u64,
    pub state: Bytes,
    /// `(seq, wire_bytes, encoded bundle)` for every buffered entry.
    pub pending: Vec<(u64, u64, Bytes)>,
}

/// A shard-local partial result: one set's committed accumulator state
/// re-encoded as a single bundle, plus the counters needed to resume
/// the merge elsewhere. This is what a `PARTIAL` frame carries from a
/// shard to the router, which reconstructs the accumulator with
/// [`StoredAccumulator::restore`] and renders through the same view
/// code as a single daemon — `to_bundle`/`restore` is proven
/// byte-identical mid-stream, so the distributed reduction tree
/// (ranks → shard accumulators → router) answers with the exact bytes
/// a single instance would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetPartial {
    /// The commit epoch this partial reflects (router cache keying).
    pub epoch: u64,
    /// Bundles folded into `state` so far.
    pub bundles: u64,
    /// Sum of profile blob bytes folded in (capacity pre-sizing).
    pub blob_bytes: u64,
    /// The folded accumulator as one encoded DCPB bundle.
    pub state: Bytes,
}

/// Magic for the encoded [`SetPartial`] payload: "DCPP".
pub const PARTIAL_MAGIC: [u8; 4] = *b"DCPP";

/// Checksum over an encoded partial (everything in front of the
/// trailing checksum itself): partials cross the network between two
/// trusting processes, and a flipped bit inside the state bundle could
/// otherwise decode as a *different valid bundle* — a wrong-but-OK
/// response, the one failure mode byte-identity cannot tolerate.
fn partial_checksum(prefix: &[u8]) -> u64 {
    use std::hash::Hasher as _;
    let mut h = dcp_support::FxHasher::default();
    h.write(prefix);
    h.finish()
}

/// Serialize a [`SetPartial`] for a `DATA` response frame.
pub fn encode_set_partial(p: &SetPartial) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(&PARTIAL_MAGIC);
    put_varint(&mut buf, p.epoch);
    put_varint(&mut buf, p.bundles);
    put_varint(&mut buf, p.blob_bytes);
    put_varint(&mut buf, p.state.len() as u64);
    buf.put_slice(&p.state);
    let prefix = buf.freeze();
    let sum = partial_checksum(prefix.as_slice());
    let mut framed = BytesMut::with_capacity(prefix.len() + 8);
    framed.put_slice(prefix.as_slice());
    framed.put_slice(&sum.to_be_bytes());
    framed.freeze()
}

/// Decode a [`SetPartial`] payload defensively: bad magic, truncation,
/// trailing garbage, and any checksum mismatch are typed errors, never
/// panics — routed frames go through the same robustness grind as the
/// rest of the protocol, and the checksum turns *every* in-flight bit
/// flip into a typed [`ServeError::PartialMerge`].
pub fn decode_set_partial(body: Bytes) -> Result<SetPartial, ServeError> {
    if body.len() < 8 {
        return Err(ServeError::Truncated);
    }
    let (prefix, tail) = body.as_slice().split_at(body.len() - 8);
    let expect = u64::from_be_bytes(tail.try_into().expect("8-byte tail"));
    if partial_checksum(prefix) != expect {
        return Err(ServeError::PartialMerge(format!(
            "checksum mismatch over {} payload bytes",
            prefix.len()
        )));
    }
    let mut body = body.slice(0..body.len() - 8);
    let magic = get_slice(&mut body, 4).map_err(|_| ServeError::Truncated)?;
    if magic.as_slice() != PARTIAL_MAGIC {
        return Err(ServeError::Codec(CodecError::BadMagic));
    }
    let field = |e: CodecError| match e {
        CodecError::Truncated => ServeError::Truncated,
        other => ServeError::Codec(other),
    };
    let epoch = get_varint(&mut body).map_err(field)?;
    let bundles = get_varint(&mut body).map_err(field)?;
    let blob_bytes = get_varint(&mut body).map_err(field)?;
    let state_len = get_varint(&mut body).map_err(field)?;
    if state_len > body.remaining() as u64 {
        return Err(ServeError::Truncated);
    }
    let state = get_slice(&mut body, state_len as usize).map_err(field)?;
    if body.has_remaining() {
        return Err(ServeError::Codec(CodecError::BadCount(body.remaining() as u64)));
    }
    Ok(SetPartial { epoch, bundles, blob_bytes, state })
}

impl SetPartial {
    /// Reconstruct the renderable profiles this partial describes. The
    /// state bundle is re-validated end to end (`decode_bundle` rejects
    /// anything malformed), so a corrupt partial can never produce a
    /// wrong-but-OK response — it fails typed here.
    pub fn reconstruct(&self) -> Result<StoredProfiles, ServeError> {
        let bundle = decode_bundle(self.state.clone())?;
        let mut acc = StoredAccumulator::restore(bundle, self.bundles, self.blob_bytes);
        Ok(acc.snapshot()?)
    }
}

/// The whole server state behind one lock: sets, cache, counters.
pub struct ProfileStore {
    config: StoreConfig,
    sets: FxHashMap<String, ProfileSet>,
    cache: LruCache<CacheKey, String>,
    bytes_stored: u64,
    ingests: u64,
    queries: u64,
    /// Snapshot requests answered from the per-epoch cache (no fold, no
    /// tree handout — a pure Arc bump).
    snapshot_reuse: u64,
    /// Partial fetches answered from the per-epoch encoded cache.
    partial_reuse: u64,
    latency: FxHashMap<&'static str, LatencyHistogram>,
}

impl ProfileStore {
    pub fn new(config: StoreConfig) -> Self {
        let cache = LruCache::new(config.cache_entries, config.cache_bytes);
        Self {
            config,
            sets: FxHashMap::default(),
            cache,
            bytes_stored: 0,
            ingests: 0,
            queries: 0,
            snapshot_reuse: 0,
            partial_reuse: 0,
            latency: FxHashMap::default(),
        }
    }

    /// Validate one ingest without mutating anything: budget, sequencing
    /// discipline, duplicate slot, reorder-buffer cap. On success the
    /// returned ticket pins the commit slot this ingest will take.
    pub fn prepare_ingest(
        &self,
        set: &str,
        seq: Option<u64>,
        wire_bytes: u64,
    ) -> Result<IngestTicket, ServeError> {
        if self.bytes_stored.saturating_add(wire_bytes) > self.config.byte_budget {
            return Err(ServeError::BudgetExceeded {
                budget: self.config.byte_budget,
                stored: self.bytes_stored,
                requested: wire_bytes,
            });
        }
        let mode = match seq {
            Some(_) => IngestMode::Explicit,
            None => IngestMode::Arrival,
        };
        let (next_seq, pending_bytes, buffered_dup) = match self.sets.get(set) {
            Some(entry) => {
                if entry.mode != mode {
                    return Err(ServeError::SeqModeMismatch {
                        set: set.to_string(),
                        explicit: entry.mode == IngestMode::Explicit,
                    });
                }
                let dup = seq.is_some_and(|s| entry.pending.contains_key(&s));
                (entry.next_seq, entry.pending_bytes, dup)
            }
            None => (0, 0, false),
        };
        // Arrival order takes the next commit slot — always gap-free, so
        // it commits immediately and can never be stranded behind an
        // out-of-order buffer someone else left open.
        let resolved = match seq {
            Some(s) => {
                if s < next_seq || buffered_dup {
                    return Err(ServeError::DuplicateSeq(s));
                }
                s
            }
            None => next_seq,
        };
        if resolved > next_seq
            && pending_bytes.saturating_add(wire_bytes) > self.config.pending_cap
        {
            return Err(ServeError::PendingCapExceeded {
                cap: self.config.pending_cap,
                pending: pending_bytes,
                requested: wire_bytes,
            });
        }
        Ok(IngestTicket { mode, seq: resolved })
    }

    /// Apply a prepared ingest. Infallible by construction — everything
    /// that can be refused was refused in `prepare_ingest`. Returns the
    /// committed-or-buffered sequence number and the set's epoch after
    /// the ingest.
    pub fn apply_ingest(
        &mut self,
        set: &str,
        ticket: IngestTicket,
        wire_bytes: u64,
        bundle: StoredBundle,
    ) -> (u64, u64) {
        let entry = self
            .sets
            .entry(set.to_string())
            .or_insert_with(|| ProfileSet::new(ticket.mode));
        entry.pending.insert(ticket.seq, (bundle, wire_bytes));
        entry.pending_bytes += wire_bytes;
        // Commit the contiguous prefix in sequence order — the only
        // order that ever reaches the accumulator. Committed entries
        // refund their reorder-buffer charge.
        while let Some((b, w)) = entry.pending.remove(&entry.next_seq) {
            entry.pending_bytes -= w;
            entry.acc.ingest(b);
            entry.next_seq += 1;
            entry.epoch += 1;
            entry.snapshot = None;
            entry.partial = None;
        }
        self.bytes_stored += wire_bytes;
        self.ingests += 1;
        (ticket.seq, entry.epoch)
    }

    /// Add one decoded bundle to `set`. `wire_bytes` is the encoded
    /// bundle size, charged against the byte budget. Returns the
    /// committed-or-buffered sequence number and the set's epoch after
    /// the ingest.
    pub fn ingest(
        &mut self,
        set: &str,
        seq: Option<u64>,
        wire_bytes: u64,
        bundle: StoredBundle,
    ) -> Result<(u64, u64), ServeError> {
        let ticket = self.prepare_ingest(set, seq, wire_bytes)?;
        Ok(self.apply_ingest(set, ticket, wire_bytes, bundle))
    }

    /// Re-apply one write-ahead-log record during recovery. Records the
    /// snapshot already covers (slot below the commit watermark, or
    /// sitting in the restored reorder buffer) are skipped — that makes
    /// replay idempotent across the snapshot/truncate crash window.
    /// Returns whether the record was applied. Budget and cap checks are
    /// deliberately absent: the record was accepted once.
    pub fn replay_ingest(
        &mut self,
        set: &str,
        mode: IngestMode,
        seq: u64,
        wire_bytes: u64,
        bundle: StoredBundle,
    ) -> Result<bool, ServeError> {
        let entry = self.sets.entry(set.to_string()).or_insert_with(|| ProfileSet::new(mode));
        if entry.mode != mode {
            return Err(ServeError::SeqModeMismatch {
                set: set.to_string(),
                explicit: entry.mode == IngestMode::Explicit,
            });
        }
        if seq < entry.next_seq || entry.pending.contains_key(&seq) {
            return Ok(false);
        }
        self.apply_ingest(set, IngestTicket { mode, seq }, wire_bytes, bundle);
        Ok(true)
    }

    /// Recreate one set from a durable snapshot record.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_set(
        &mut self,
        name: String,
        mode: IngestMode,
        next_seq: u64,
        epoch: u64,
        bundles: u64,
        blob_bytes: u64,
        state: StoredBundle,
        pending: Vec<(u64, u64, StoredBundle)>,
    ) {
        let mut set = ProfileSet::new(mode);
        set.acc = StoredAccumulator::restore(state, bundles, blob_bytes);
        set.next_seq = next_seq;
        set.epoch = epoch;
        for (seq, wire, bundle) in pending {
            set.pending_bytes += wire;
            set.pending.insert(seq, (bundle, wire));
        }
        self.sets.insert(name, set);
    }

    /// Restore the store-wide counters a snapshot carries.
    pub fn restore_counters(&mut self, bytes_stored: u64, ingests: u64) {
        self.bytes_stored = bytes_stored;
        self.ingests = ingests;
    }

    /// Fold every set and dump the durable state of the whole store,
    /// sorted by name. The heavy part (the per-class fold + re-encode)
    /// is the price of truncating the log.
    pub fn dump_sets(&mut self) -> Result<Vec<SetDump>, ServeError> {
        let mut out = Vec::with_capacity(self.sets.len());
        let mut names: Vec<String> = self.sets.keys().cloned().collect();
        names.sort();
        for name in names {
            let entry = self.sets.get_mut(&name).expect("listed name");
            // The incremental splice is pinned byte-identical to the full
            // re-encode, so durable snapshots ride the cache too.
            let state = entry.acc.encode_state()?;
            let pending = entry
                .pending
                .iter()
                .map(|(&seq, (b, w))| (seq, *w, encode_bundle(b)))
                .collect();
            out.push(SetDump {
                name,
                mode: entry.mode,
                next_seq: entry.next_seq,
                epoch: entry.epoch,
                bundles: entry.acc.bundles(),
                blob_bytes: entry.acc.blob_bytes(),
                state,
                pending,
            });
        }
        Ok(out)
    }

    /// The set's current epoch (0 if it does not exist — the empty set
    /// is served as epoch 0 rather than an error on the query path that
    /// wants it; resolution of unknown names is the query layer's call).
    pub fn epoch(&self, set: &str) -> Option<u64> {
        self.sets.get(set).map(|s| s.epoch)
    }

    /// A renderable snapshot of `set` at its current epoch. Snapshots
    /// are cached per epoch; a cold epoch folds only the classes the
    /// commits actually touched and hands out shared trees for the rest
    /// (deep-cloning everything instead when `incremental_read` is off).
    pub fn snapshot(&mut self, set: &str) -> Result<Arc<StoredProfiles>, ServeError> {
        let entry = self
            .sets
            .get_mut(set)
            .ok_or_else(|| ServeError::UnknownSet(set.to_string()))?;
        if let Some(s) = &entry.snapshot {
            self.snapshot_reuse += 1;
            return Ok(Arc::clone(s));
        }
        // Bundles were validated at decode time, so a fold error here is
        // unreachable in practice; surface it typed anyway.
        let snap = Arc::new(if self.config.incremental_read {
            entry.acc.snapshot()?
        } else {
            entry.acc.snapshot_cloned()?
        });
        entry.snapshot = Some(Arc::clone(&snap));
        Ok(snap)
    }

    /// The named set's shard-local partial, encoded for a `DATA` frame.
    /// Cached per epoch alongside the snapshot; a cold epoch re-encodes
    /// only the dirty classes and splices cached bytes for the rest
    /// (re-encoding every class when `incremental_read` is off).
    pub fn partial(&mut self, set: &str) -> Result<Bytes, ServeError> {
        let entry = self
            .sets
            .get_mut(set)
            .ok_or_else(|| ServeError::UnknownSet(set.to_string()))?;
        if let Some(p) = &entry.partial {
            self.partial_reuse += 1;
            return Ok(p.clone());
        }
        let state = if self.config.incremental_read {
            entry.acc.encode_state()?
        } else {
            entry.acc.encode_state_recoded()?
        };
        let encoded = encode_set_partial(&SetPartial {
            epoch: entry.epoch,
            bundles: entry.acc.bundles(),
            blob_bytes: entry.acc.blob_bytes(),
            state,
        });
        entry.partial = Some(encoded.clone());
        Ok(encoded)
    }

    /// Sorted per-set rows for the `sets` query and the stats report.
    pub fn list_sets(&self) -> Vec<SetRow> {
        let mut rows: Vec<SetRow> = self
            .sets
            .iter()
            .map(|(n, s)| SetRow {
                name: n.clone(),
                bundles: s.acc.bundles(),
                epoch: s.epoch,
                gap: s.pending.len(),
                gap_bytes: s.pending_bytes,
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    pub fn cache_get(&mut self, key: &CacheKey) -> Option<String> {
        self.cache.get(key).cloned()
    }

    pub fn cache_put(&mut self, key: CacheKey, response: String) {
        let cost = key.query.len() + response.len();
        self.cache.insert(key, response, cost);
    }

    /// Record one served request of `kind` taking `micros`.
    pub fn record(&mut self, kind: &'static str, micros: u64) {
        self.latency.entry(kind).or_default().record(micros);
        if kind == "query" {
            self.queries += 1;
        }
    }

    pub fn note_query(&mut self) {
        self.queries += 1;
    }

    /// The `/metrics`-style stats report. Deterministic ordering; the
    /// counters themselves obviously advance between calls.
    pub fn stats_text(&self) -> String {
        let mut out = String::from("SERVE STATS\n");
        out.push_str(&format!("ingests {}\n", self.ingests));
        out.push_str(&format!("queries {}\n", self.queries));
        let merges: u64 = self.sets.values().map(|s| s.acc.folds()).sum();
        out.push_str(&format!("merges {}\n", merges));
        out.push_str(&format!("snapshot_reuse {}\n", self.snapshot_reuse));
        out.push_str(&format!("partial_reuse {}\n", self.partial_reuse));
        let dirty: u64 = self.sets.values().map(|s| s.acc.dirty_rebuilds()).sum();
        out.push_str(&format!("dirty_class_rebuilds {}\n", dirty));
        out.push_str(&format!("bytes_stored {}\n", self.bytes_stored));
        out.push_str(&format!("byte_budget {}\n", self.config.byte_budget));
        let pending: u64 = self.sets.values().map(|s| s.pending_bytes).sum();
        out.push_str(&format!("pending_bytes {}\n", pending));
        out.push_str(&format!("pending_cap {}\n", self.config.pending_cap));
        out.push_str(&format!("sets {}\n", self.sets.len()));
        out.push_str(&format!(
            "cache_hits {}\ncache_misses {}\ncache_hit_rate {:.3}\ncache_entries {}\ncache_bytes {}\n",
            self.cache.hits(),
            self.cache.misses(),
            self.cache.hit_rate(),
            self.cache.len(),
            self.cache.bytes()
        ));
        let mut kinds: Vec<&&'static str> = self.latency.keys().collect();
        kinds.sort();
        for k in kinds {
            out.push_str(&format!("latency_us[{k}] {}\n", self.latency[*k].render()));
        }
        for r in self.list_sets() {
            out.push_str(&format!(
                "set[{}] bundles={} epoch={} gap={} gap_bytes={}\n",
                r.name, r.bundles, r.epoch, r.gap, r.gap_bytes
            ));
        }
        out
    }

    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    pub fn ingests(&self) -> u64 {
        self.ingests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::metrics::StorageClass;
    use dcp_core::stored::encode_bundle;

    fn bundle() -> (StoredBundle, u64) {
        // A metadata-only bundle is enough to drive the store machinery.
        let mut b = StoredBundle::default();
        b.stats.samples = 1;
        let wire = encode_bundle(&b).len() as u64;
        (b, wire)
    }

    #[test]
    fn out_of_order_seqs_commit_in_order() {
        let mut st = ProfileStore::new(StoreConfig::default());
        let (b, w) = bundle();
        // seq 1 arrives first: buffered, epoch stays 0.
        let (s1, e1) = st.ingest("a", Some(1), w, b.clone()).expect("buffered");
        assert_eq!((s1, e1), (1, 0));
        // seq 0 fills the gap: both commit, epoch jumps to 2.
        let (s0, e0) = st.ingest("a", Some(0), w, b.clone()).expect("commits");
        assert_eq!((s0, e0), (0, 2));
        let snap = st.snapshot("a").expect("snapshot");
        assert_eq!(snap.stats().samples, 2);
    }

    #[test]
    fn duplicate_seq_is_typed() {
        let mut st = ProfileStore::new(StoreConfig::default());
        let (b, w) = bundle();
        st.ingest("a", Some(0), w, b.clone()).expect("first");
        assert_eq!(st.ingest("a", Some(0), w, b.clone()), Err(ServeError::DuplicateSeq(0)));
        // Buffered duplicates are caught too.
        st.ingest("a", Some(5), w, b.clone()).expect("buffered");
        assert_eq!(st.ingest("a", Some(5), w, b), Err(ServeError::DuplicateSeq(5)));
    }

    #[test]
    fn arrival_order_commits_immediately_never_strands() {
        // Regression: an arrival-order ingest used to be assigned
        // `pending.last_key + 1`, landing *behind* any open gap and
        // silently withheld from every query. Arrival order now takes
        // the next commit slot and commits at once.
        let mut st = ProfileStore::new(StoreConfig::default());
        let (b, w) = bundle();
        for i in 0..3 {
            let (seq, epoch) = st.ingest("a", None, w, b.clone()).expect("arrival");
            assert_eq!((seq, epoch), (i, i + 1), "every arrival ingest commits immediately");
        }
        assert_eq!(st.snapshot("a").expect("snap").stats().samples, 3);
    }

    #[test]
    fn mixing_sequence_disciplines_is_typed() {
        let mut st = ProfileStore::new(StoreConfig::default());
        let (b, w) = bundle();
        // Explicit-mode set with an open gap: an arrival-order ingest is
        // refused instead of being stranded behind the gap.
        st.ingest("e", Some(5), w, b.clone()).expect("buffered");
        assert_eq!(
            st.ingest("e", None, w, b.clone()),
            Err(ServeError::SeqModeMismatch { set: "e".into(), explicit: true })
        );
        // Nothing was charged or recorded for the refused ingest.
        assert_eq!(st.ingests(), 1);
        // And the reverse direction on an arrival-mode set.
        st.ingest("a", None, w, b.clone()).expect("arrival");
        assert_eq!(
            st.ingest("a", Some(7), w, b),
            Err(ServeError::SeqModeMismatch { set: "a".into(), explicit: false })
        );
    }

    #[test]
    fn pending_cap_bounds_the_reorder_buffer_and_refunds_on_commit() {
        let (b, w) = bundle();
        let mut st = ProfileStore::new(StoreConfig {
            pending_cap: w * 2,
            ..StoreConfig::default()
        });
        // Two buffered entries fit under the cap; the third is refused.
        st.ingest("a", Some(10), w, b.clone()).expect("buffered");
        st.ingest("a", Some(11), w, b.clone()).expect("buffered");
        let err = st.ingest("a", Some(12), w, b.clone()).expect_err("cap");
        assert_eq!(
            err,
            ServeError::PendingCapExceeded { cap: w * 2, pending: w * 2, requested: w }
        );
        let stats = st.stats_text();
        assert!(stats.contains(&format!("pending_bytes {}", w * 2)), "{stats}");
        assert!(stats.contains(&format!("gap=2 gap_bytes={}", w * 2)), "{stats}");
        // An in-order ingest still lands: the cap only bounds buffering.
        st.ingest("a", Some(0), w, b.clone()).expect("commits");
        // Filling the gap refunds the buffer; buffering works again.
        for s in 1..=9 {
            st.ingest("a", Some(s), w, b.clone()).expect("fills");
        }
        let stats = st.stats_text();
        assert!(stats.contains("pending_bytes 0"), "{stats}");
        st.ingest("a", Some(13), w, b).expect("buffer space refunded");
    }

    #[test]
    fn budget_rejection_is_typed_and_mutation_free() {
        let (b, w) = bundle();
        let mut st = ProfileStore::new(StoreConfig {
            byte_budget: w * 2,
            ..StoreConfig::default()
        });
        st.ingest("a", None, w, b.clone()).expect("fits");
        st.ingest("a", None, w, b.clone()).expect("fits");
        let err = st.ingest("a", None, w, b).expect_err("over budget");
        assert!(matches!(err, ServeError::BudgetExceeded { .. }));
        assert_eq!(st.ingests(), 2);
        assert_eq!(st.bytes_stored(), w * 2);
        assert_eq!(st.epoch("a"), Some(2));
    }

    #[test]
    fn snapshot_is_cached_per_epoch_and_invalidated_on_ingest() {
        let mut st = ProfileStore::new(StoreConfig::default());
        let (b, w) = bundle();
        st.ingest("a", None, w, b.clone()).expect("ingest");
        let s1 = st.snapshot("a").expect("snap");
        let s2 = st.snapshot("a").expect("snap again");
        assert!(Arc::ptr_eq(&s1, &s2), "same epoch reuses the snapshot");
        st.ingest("a", None, w, b).expect("ingest");
        let s3 = st.snapshot("a").expect("snap after ingest");
        assert!(!Arc::ptr_eq(&s1, &s3), "new epoch, new snapshot");
        assert!(!s3.export(StorageClass::Heap).is_empty());
    }

    #[test]
    fn unknown_set_is_typed() {
        let mut st = ProfileStore::new(StoreConfig::default());
        assert_eq!(st.snapshot("nope").err(), Some(ServeError::UnknownSet("nope".into())));
    }

    #[test]
    fn dump_restore_roundtrips_sequencing_state() {
        let (b, w) = bundle();
        let mut st = ProfileStore::new(StoreConfig::default());
        st.ingest("a", Some(0), w, b.clone()).expect("commits");
        st.ingest("a", Some(3), w, b.clone()).expect("buffers");
        st.ingest("z", None, w, b).expect("arrival");
        let dumps = st.dump_sets().expect("dump");
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].name, "a");
        assert_eq!(dumps[0].next_seq, 1);
        assert_eq!(dumps[0].pending.len(), 1);
        assert_eq!(dumps[0].pending[0].0, 3);
        assert!(matches!(dumps[0].mode, IngestMode::Explicit));
        assert!(matches!(dumps[1].mode, IngestMode::Arrival));

        let mut re = ProfileStore::new(StoreConfig::default());
        re.restore_counters(st.bytes_stored(), st.ingests());
        for d in dumps {
            let state = dcp_core::stored::decode_bundle(d.state.clone()).expect("state");
            let pending = d
                .pending
                .iter()
                .map(|(s, wb, raw)| {
                    (*s, *wb, dcp_core::stored::decode_bundle(raw.clone()).expect("pending"))
                })
                .collect();
            re.restore_set(
                d.name, d.mode, d.next_seq, d.epoch, d.bundles, d.blob_bytes, state, pending,
            );
        }
        assert_eq!(re.bytes_stored(), st.bytes_stored());
        assert_eq!(re.epoch("a"), st.epoch("a"));
        assert_eq!(re.epoch("z"), st.epoch("z"));
        // The restored reorder buffer still commits when the gap fills.
        let (b, w) = bundle();
        for s in 1..=2 {
            re.ingest("a", Some(s), w, b.clone()).expect("fills");
        }
        assert_eq!(re.epoch("a"), Some(4), "buffered seq 3 committed after the gap filled");
        let stats = re.stats_text();
        assert!(stats.contains("set[a] bundles=4"), "{stats}");
    }

    #[test]
    fn partial_roundtrip_reconstructs_byte_identical_state() {
        let mut st = ProfileStore::new(StoreConfig::default());
        let (b, w) = bundle();
        st.ingest("a", None, w, b.clone()).expect("ingest");
        st.ingest("a", None, w, b.clone()).expect("ingest");
        let encoded = st.partial("a").expect("partial");
        let again = st.partial("a").expect("partial again");
        assert_eq!(encoded, again, "partials are cached per epoch");
        let p = decode_set_partial(encoded).expect("decode");
        assert_eq!(p.epoch, 2);
        assert_eq!(p.bundles, 2);
        let rebuilt = p.reconstruct().expect("reconstruct");
        let local = st.snapshot("a").expect("snapshot");
        assert_eq!(rebuilt.stats().samples, local.stats().samples);
        assert_eq!(
            rebuilt.export(StorageClass::Heap),
            local.export(StorageClass::Heap),
            "reconstructed partial must render the exact local bytes"
        );
        // A new commit invalidates the cached partial.
        st.ingest("a", None, w, b).expect("ingest");
        let p2 = decode_set_partial(st.partial("a").expect("partial")).expect("decode");
        assert_eq!(p2.epoch, 3);
        // Unknown sets are typed, like snapshots.
        assert_eq!(st.partial("nope").err(), Some(ServeError::UnknownSet("nope".into())));
    }

    #[test]
    fn partial_decode_rejects_damage_typed() {
        let p = SetPartial {
            epoch: 7,
            bundles: 3,
            blob_bytes: 99,
            state: encode_bundle(&StoredBundle::default()),
        };
        let wire = encode_set_partial(&p);
        assert_eq!(decode_set_partial(wire.clone()).expect("roundtrip"), p);
        // Every truncation is typed.
        for cut in 0..wire.len() {
            let mut short = BytesMut::new();
            short.put_slice(&wire.as_slice()[..cut]);
            assert!(decode_set_partial(short.freeze()).is_err(), "cut at {cut}");
        }
        // Trailing garbage is typed.
        let mut long = BytesMut::new();
        long.put_slice(wire.as_slice());
        long.put_u8(0);
        assert!(decode_set_partial(long.freeze()).is_err());
        // Every single-bit flip anywhere in the payload is caught by
        // the trailing checksum — a flipped state byte must never
        // decode as a different-but-valid partial (wrong-but-OK).
        for pos in 0..wire.len() {
            for bit in 0..8u8 {
                let mut bad = wire.as_slice().to_vec();
                bad[pos] ^= 1 << bit;
                let mut buf = BytesMut::new();
                buf.put_slice(&bad);
                match decode_set_partial(buf.freeze()) {
                    Err(ServeError::PartialMerge(_)) => {}
                    other => panic!("flip at {pos}.{bit}: expected checksum refusal, got {other:?}"),
                }
            }
        }
        // Wrong magic (with a recomputed, valid checksum) is typed as
        // BadMagic — the not-our-payload case, not the damage case.
        let mut bad = wire.as_slice()[..wire.len() - 8].to_vec();
        bad[0] ^= 0x20;
        let mut buf = BytesMut::new();
        buf.put_slice(&bad);
        let sum = partial_checksum(&bad);
        buf.put_slice(&sum.to_be_bytes());
        assert_eq!(
            decode_set_partial(buf.freeze()),
            Err(ServeError::Codec(CodecError::BadMagic))
        );
    }

    #[test]
    fn response_cache_hits_by_epoch() {
        let mut st = ProfileStore::new(StoreConfig::default());
        let k0 = CacheKey { query: "ranking a latency".into(), epochs: [1, 0] };
        assert!(st.cache_get(&k0).is_none());
        st.cache_put(k0.clone(), "resp".into());
        assert_eq!(st.cache_get(&k0).as_deref(), Some("resp"));
        // A new epoch is a different key: miss.
        let k1 = CacheKey { query: "ranking a latency".into(), epochs: [2, 0] };
        assert!(st.cache_get(&k1).is_none());
        let stats = st.stats_text();
        assert!(stats.contains("cache_hits 1"), "{stats}");
        assert!(stats.contains("cache_misses 2"), "{stats}");
    }
}
