//! Typed failures for the serving layer.
//!
//! Every way a frame, a bundle, or a query can be wrong maps to one
//! variant with a stable numeric code; the server sends `(code, text)`
//! in an ERR frame and the client reconstructs the variant. Nothing in
//! the serve path panics on untrusted input — the robustness sweep
//! feeds every truncation and bit flip of valid traffic through both
//! sides and asserts it lands here.

use dcp_cct::CodecError;

/// Everything that can go wrong between a client and the profile store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A frame did not start with the protocol magic.
    BadMagic,
    /// A frame kind byte outside the known range.
    BadKind(u8),
    /// The frame header promised more body than the peer allows.
    FrameTooLarge { len: u64, max: u64 },
    /// The stream ended mid-frame or a body ended mid-field.
    Truncated,
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A profile blob or bundle failed to decode.
    Codec(CodecError),
    /// The query verb or its arguments did not parse.
    BadQuery(String),
    /// The named profile set does not exist.
    UnknownSet(String),
    /// Accepting this ingest would exceed the store's byte budget.
    BudgetExceeded { budget: u64, stored: u64, requested: u64 },
    /// An ingest re-used an already-committed sequence number.
    DuplicateSeq(u64),
    /// The socket timed out or failed mid-conversation.
    Io(String),
    /// The server rejected the request with a code this client build
    /// does not know (forward compatibility).
    Server { code: u16, message: String },
    /// The server is draining for shutdown and takes no new work.
    ShuttingDown,
    /// A set ingested with one sequencing discipline (arrival-order or
    /// client-assigned) received a bundle using the other. Mixing the
    /// two would silently strand arrival-order ingests behind sequence
    /// gaps, so it is refused up front.
    SeqModeMismatch { set: String, explicit: bool },
    /// Buffering this out-of-order bundle would exceed the per-set
    /// reorder-buffer byte cap. The gap must fill (or the client must
    /// re-send in order) before more can be buffered.
    PendingCapExceeded { cap: u64, pending: u64, requested: u64 },
    /// The write-ahead log is damaged at `offset`; state up to there was
    /// recovered, everything after is lost.
    WalCorrupt { offset: u64, detail: String },
    /// The snapshot file failed validation; recovery refuses to start
    /// with silently missing committed data.
    SnapshotCorrupt(String),
}

impl ServeError {
    /// Stable wire code for the ERR frame.
    pub fn code(&self) -> u16 {
        match self {
            ServeError::BadMagic => 1,
            ServeError::BadKind(_) => 2,
            ServeError::FrameTooLarge { .. } => 3,
            ServeError::Truncated => 4,
            ServeError::BadUtf8 => 5,
            ServeError::Codec(_) => 6,
            ServeError::BadQuery(_) => 7,
            ServeError::UnknownSet(_) => 8,
            ServeError::BudgetExceeded { .. } => 9,
            ServeError::DuplicateSeq(_) => 10,
            ServeError::Io(_) => 11,
            ServeError::ShuttingDown => 12,
            ServeError::SeqModeMismatch { .. } => 13,
            ServeError::PendingCapExceeded { .. } => 14,
            ServeError::WalCorrupt { .. } => 15,
            ServeError::SnapshotCorrupt(_) => 16,
            ServeError::Server { code, .. } => *code,
        }
    }

    /// Reconstruct a typed error from an ERR frame. Codes carrying
    /// structured payloads come back as their variant with the payload
    /// folded into the message where it cannot be recovered.
    pub fn from_wire(code: u16, message: String) -> Self {
        match code {
            1 => ServeError::BadMagic,
            4 => ServeError::Truncated,
            5 => ServeError::BadUtf8,
            7 => ServeError::BadQuery(message),
            8 => ServeError::UnknownSet(message),
            11 => ServeError::Io(message),
            12 => ServeError::ShuttingDown,
            _ => ServeError::Server { code, message },
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadMagic => write!(f, "not a dcp-serve frame (bad magic)"),
            ServeError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            ServeError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds limit {max}")
            }
            ServeError::Truncated => write!(f, "truncated frame"),
            ServeError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ServeError::Codec(e) => write!(f, "profile decode failed: {e}"),
            ServeError::BadQuery(q) => write!(f, "bad query: {q}"),
            ServeError::UnknownSet(s) => write!(f, "unknown profile set '{s}'"),
            ServeError::BudgetExceeded { budget, stored, requested } => write!(
                f,
                "byte budget exceeded: {stored} stored + {requested} requested > {budget}"
            ),
            ServeError::DuplicateSeq(s) => write!(f, "sequence {s} already committed"),
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Server { code, message } => write!(f, "server error {code}: {message}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::SeqModeMismatch { set, explicit } => write!(
                f,
                "set '{set}' uses {} sequence numbers; this ingest {}",
                if *explicit { "client-assigned" } else { "arrival-order" },
                if *explicit { "carried none" } else { "carried one" },
            ),
            ServeError::PendingCapExceeded { cap, pending, requested } => write!(
                f,
                "reorder buffer full: {pending} pending + {requested} requested > cap {cap}"
            ),
            ServeError::WalCorrupt { offset, detail } => {
                write!(f, "write-ahead log damaged at byte {offset}: {detail}")
            }
            ServeError::SnapshotCorrupt(detail) => write!(f, "snapshot damaged: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> Self {
        // Bundle/blob truncation is indistinguishable from frame
        // truncation to a caller; keep the finer-grained variant.
        ServeError::Codec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.kind().to_string())
    }
}
