//! Typed failures for the serving layer.
//!
//! Every way a frame, a bundle, or a query can be wrong maps to one
//! variant with a stable numeric code; the server sends `(code, text)`
//! in an ERR frame and the client reconstructs the variant. Nothing in
//! the serve path panics on untrusted input — the robustness sweep
//! feeds every truncation and bit flip of valid traffic through both
//! sides and asserts it lands here.

use dcp_cct::CodecError;

/// Everything that can go wrong between a client and the profile store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A frame did not start with the protocol magic.
    BadMagic,
    /// A frame kind byte outside the known range.
    BadKind(u8),
    /// The frame header promised more body than the peer allows.
    FrameTooLarge { len: u64, max: u64 },
    /// The stream ended mid-frame or a body ended mid-field.
    Truncated,
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A profile blob or bundle failed to decode.
    Codec(CodecError),
    /// The query verb or its arguments did not parse.
    BadQuery(String),
    /// The named profile set does not exist.
    UnknownSet(String),
    /// Accepting this ingest would exceed the store's byte budget.
    BudgetExceeded { budget: u64, stored: u64, requested: u64 },
    /// An ingest re-used an already-committed sequence number.
    DuplicateSeq(u64),
    /// The socket timed out or failed mid-conversation.
    Io(String),
    /// The server rejected the request with a code this client build
    /// does not know (forward compatibility).
    Server { code: u16, message: String },
    /// The server is draining for shutdown and takes no new work.
    ShuttingDown,
    /// A set ingested with one sequencing discipline (arrival-order or
    /// client-assigned) received a bundle using the other. Mixing the
    /// two would silently strand arrival-order ingests behind sequence
    /// gaps, so it is refused up front.
    SeqModeMismatch { set: String, explicit: bool },
    /// Buffering this out-of-order bundle would exceed the per-set
    /// reorder-buffer byte cap. The gap must fill (or the client must
    /// re-send in order) before more can be buffered.
    PendingCapExceeded { cap: u64, pending: u64, requested: u64 },
    /// The write-ahead log is damaged at `offset`; state up to there was
    /// recovered, everything after is lost.
    WalCorrupt { offset: u64, detail: String },
    /// The snapshot file failed validation; recovery refuses to start
    /// with silently missing committed data.
    SnapshotCorrupt(String),
    /// The router exhausted every replica of the owning shard without a
    /// well-formed response. Distinct from [`ServeError::Io`]: an `Io`
    /// names one broken socket, this names a shard the cluster cannot
    /// currently reach at all.
    ShardUnreachable(String),
    /// The cluster's placement disagrees with the router's ring — an
    /// invalid topology (duplicate replica address, empty shard group)
    /// or a shard reporting a set the ring says it cannot own.
    RingMismatch(String),
    /// A shard's partial result failed to decode or recombine at the
    /// router. The shard answered, but its partial cannot be folded
    /// into the distributed reduction tree.
    PartialMerge(String),
    /// A pipelined ingest ack did not match the oldest outstanding
    /// push (wrong set, wrong sequence, or an unparseable ack body).
    /// The response stream can no longer be paired with requests, so
    /// the connection is unusable — the client must reconnect.
    AckMismatch(String),
}

impl ServeError {
    /// Stable wire code for the ERR frame.
    pub fn code(&self) -> u16 {
        match self {
            ServeError::BadMagic => 1,
            ServeError::BadKind(_) => 2,
            ServeError::FrameTooLarge { .. } => 3,
            ServeError::Truncated => 4,
            ServeError::BadUtf8 => 5,
            ServeError::Codec(_) => 6,
            ServeError::BadQuery(_) => 7,
            ServeError::UnknownSet(_) => 8,
            ServeError::BudgetExceeded { .. } => 9,
            ServeError::DuplicateSeq(_) => 10,
            ServeError::Io(_) => 11,
            ServeError::ShuttingDown => 12,
            ServeError::SeqModeMismatch { .. } => 13,
            ServeError::PendingCapExceeded { .. } => 14,
            ServeError::WalCorrupt { .. } => 15,
            ServeError::SnapshotCorrupt(_) => 16,
            ServeError::ShardUnreachable(_) => 17,
            ServeError::RingMismatch(_) => 18,
            ServeError::PartialMerge(_) => 19,
            ServeError::AckMismatch(_) => 20,
            ServeError::Server { code, .. } => *code,
        }
    }

    /// Reconstruct a typed error from an ERR frame. Codes carrying
    /// structured payloads come back as their variant with the payload
    /// folded into the message where it cannot be recovered.
    pub fn from_wire(code: u16, message: String) -> Self {
        match code {
            1 => ServeError::BadMagic,
            4 => ServeError::Truncated,
            5 => ServeError::BadUtf8,
            7 => ServeError::BadQuery(message),
            8 => ServeError::UnknownSet(message),
            11 => ServeError::Io(message),
            12 => ServeError::ShuttingDown,
            17 => ServeError::ShardUnreachable(message),
            18 => ServeError::RingMismatch(message),
            19 => ServeError::PartialMerge(message),
            20 => ServeError::AckMismatch(message),
            _ => ServeError::Server { code, message },
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadMagic => write!(f, "not a dcp-serve frame (bad magic)"),
            ServeError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            ServeError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds limit {max}")
            }
            ServeError::Truncated => write!(f, "truncated frame"),
            ServeError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ServeError::Codec(e) => write!(f, "profile decode failed: {e}"),
            ServeError::BadQuery(q) => write!(f, "bad query: {q}"),
            ServeError::UnknownSet(s) => write!(f, "unknown profile set '{s}'"),
            ServeError::BudgetExceeded { budget, stored, requested } => write!(
                f,
                "byte budget exceeded: {stored} stored + {requested} requested > {budget}"
            ),
            ServeError::DuplicateSeq(s) => write!(f, "sequence {s} already committed"),
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Server { code, message } => write!(f, "server error {code}: {message}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::SeqModeMismatch { set, explicit } => write!(
                f,
                "set '{set}' uses {} sequence numbers; this ingest {}",
                if *explicit { "client-assigned" } else { "arrival-order" },
                if *explicit { "carried none" } else { "carried one" },
            ),
            ServeError::PendingCapExceeded { cap, pending, requested } => write!(
                f,
                "reorder buffer full: {pending} pending + {requested} requested > cap {cap}"
            ),
            ServeError::WalCorrupt { offset, detail } => {
                write!(f, "write-ahead log damaged at byte {offset}: {detail}")
            }
            ServeError::SnapshotCorrupt(detail) => write!(f, "snapshot damaged: {detail}"),
            ServeError::ShardUnreachable(detail) => write!(f, "shard unreachable: {detail}"),
            ServeError::RingMismatch(detail) => write!(f, "ring mismatch: {detail}"),
            ServeError::PartialMerge(detail) => write!(f, "partial merge failed: {detail}"),
            ServeError::AckMismatch(detail) => write!(f, "ingest ack mismatch: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> Self {
        // Bundle/blob truncation is indistinguishable from frame
        // truncation to a caller; keep the finer-grained variant.
        ServeError::Codec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.kind().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_codes_are_stable() {
        // The wire code is the cross-version contract: an old client
        // must type a new server's errors and vice versa. Any change to
        // a number here is a protocol break — fail loudly.
        let pinned: Vec<(ServeError, u16)> = vec![
            (ServeError::BadMagic, 1),
            (ServeError::BadKind(0x7f), 2),
            (ServeError::FrameTooLarge { len: 2, max: 1 }, 3),
            (ServeError::Truncated, 4),
            (ServeError::BadUtf8, 5),
            (ServeError::BadQuery("q".into()), 7),
            (ServeError::UnknownSet("s".into()), 8),
            (ServeError::BudgetExceeded { budget: 1, stored: 1, requested: 1 }, 9),
            (ServeError::DuplicateSeq(3), 10),
            (ServeError::Io("broken".into()), 11),
            (ServeError::ShuttingDown, 12),
            (ServeError::SeqModeMismatch { set: "s".into(), explicit: true }, 13),
            (ServeError::PendingCapExceeded { cap: 1, pending: 1, requested: 1 }, 14),
            (ServeError::WalCorrupt { offset: 0, detail: "d".into() }, 15),
            (ServeError::SnapshotCorrupt("d".into()), 16),
            (ServeError::ShardUnreachable("shard 1: all 2 replicas failed".into()), 17),
            (ServeError::RingMismatch("set on wrong shard".into()), 18),
            (ServeError::PartialMerge("bad state bundle".into()), 19),
            (ServeError::AckMismatch("ack for seq 4 where 3 was next".into()), 20),
        ];
        for (err, code) in pinned {
            assert_eq!(err.code(), code, "{err}");
        }
        assert_eq!(ServeError::Codec(dcp_cct::CodecError::Truncated).code(), 6);
        assert_eq!(ServeError::Server { code: 999, message: String::new() }.code(), 999);
    }

    #[test]
    fn router_errors_round_trip_typed_not_generic() {
        // The scale-out fix: a dead shard surfaces as ShardUnreachable
        // (17), not a collapsed generic Io (11) or opaque Server code.
        for err in [
            ServeError::ShardUnreachable("shard 0: connection refused x2".into()),
            ServeError::RingMismatch("set 'nw' owned by shard 2, listed by 0".into()),
            ServeError::PartialMerge("set 'nw': state bundle truncated".into()),
        ] {
            let (code, msg) = (err.code(), err.to_string());
            let back = ServeError::from_wire(
                code,
                match &err {
                    ServeError::ShardUnreachable(d)
                    | ServeError::RingMismatch(d)
                    | ServeError::PartialMerge(d) => d.clone(),
                    _ => unreachable!(),
                },
            );
            assert_eq!(back, err, "code {code} ({msg}) must reconstruct its variant");
        }
    }
}
