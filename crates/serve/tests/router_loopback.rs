//! Router loopback e2e: a real sharded cluster on loopback sockets,
//! differentially tested against a single daemon holding every set.
//!
//! The contract under test is the tentpole invariant: scatter-gather
//! through the consistent-hash ring, R-way replication, and the
//! partial-result combiner must be **byte-identical** to one daemon fed
//! the same bundles — for every query kind, for error responses, and
//! while ingest races the queries.

use std::time::Duration;

use dcp_cct::{encode, Cct, Frame, ROOT};
use dcp_core::metrics::{StorageClass, WIDTH};
use dcp_core::stored::{encode_bundle, StoredBundle};
use dcp_serve::{Client, Router, RouterConfig, ServeError, Server, ServerConfig};
use dcp_support::HashRing;

fn spawn_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind shard");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn spawn_router(config: RouterConfig) -> (String, std::thread::JoinHandle<()>) {
    let router = Router::bind(config).expect("bind router");
    let addr = router.local_addr().expect("addr");
    let handle = std::thread::spawn(move || router.serve().expect("route"));
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    Client::connect(addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("join");
}

/// A sharded cluster: `groups` shard groups of `replicas` daemons each,
/// plus a router in front. Every daemon is memory-only and identically
/// configured.
struct Cluster {
    router_addr: String,
    router_handle: std::thread::JoinHandle<()>,
    shards: Vec<Vec<(String, std::thread::JoinHandle<()>)>>,
    vnodes: u32,
}

impl Cluster {
    fn start(groups: usize, replicas: usize) -> Self {
        let mut shards = Vec::new();
        let mut topology = Vec::new();
        for _ in 0..groups {
            let mut group = Vec::new();
            let mut addrs = Vec::new();
            for _ in 0..replicas {
                let (addr, handle) = spawn_server(ServerConfig::default());
                addrs.push(addr.clone());
                group.push((addr, handle));
            }
            topology.push(addrs);
            shards.push(group);
        }
        let config = RouterConfig { shards: topology, ..RouterConfig::default() };
        let vnodes = config.vnodes;
        let (router_addr, router_handle) = spawn_router(config);
        Self { router_addr, router_handle, shards, vnodes }
    }

    /// Which group owns `set` — same ring the router builds.
    fn owner(&self, set: &str) -> usize {
        HashRing::new(self.shards.len() as u32, self.vnodes).owner(set.as_bytes()) as usize
    }

    fn stop(self) {
        shutdown(&self.router_addr, self.router_handle);
        for group in self.shards {
            for (addr, handle) in group {
                shutdown(&addr, handle);
            }
        }
    }
}

/// Same bundle fixture as the single-daemon loopback suite: distinct
/// values per seed, overlapping shapes so merges actually fold.
fn bundle(seed: u64) -> StoredBundle {
    let mut heap = Cct::new(WIDTH);
    let hm = heap.child(ROOT, Frame::HeapMarker);
    let p = heap.child(hm, Frame::Proc(seed % 3));
    let s = heap.child(p, Frame::Stmt(0x100 + seed % 5));
    heap.add(s, 0, 1 + seed);
    heap.add(s, 1, 100 * (seed + 1));
    let mut stat = Cct::new(WIDTH);
    let v = stat.child(ROOT, Frame::StaticVar(seed % 2));
    stat.add(v, 0, seed + 7);
    let mut b = StoredBundle::default();
    b.profiles[StorageClass::Heap.idx()].push(encode(&heap));
    b.profiles[StorageClass::Static.idx()].push(encode(&stat));
    b.names.insert(Frame::Proc(seed % 3), format!("proc_{}", seed % 3));
    b.names.insert(Frame::StaticVar(seed % 2), format!("g_{}", seed % 2));
    b.stats.samples = 1 + seed;
    b
}

/// Every query kind against `set` (diff pairs it with `other`).
fn queries(set: &str, other: &str) -> Vec<String> {
    vec![
        format!("ranking {set} samples"),
        format!("ranking {set} latency 3"),
        format!("topdown {set} heap samples"),
        format!("topdown {set} static samples"),
        format!("bottomup {set} samples"),
        format!("flat {set} heap samples"),
        format!("flat {set} heap samples 2"),
        format!("vars {set} samples"),
        format!("diff {set} {other} samples"),
        format!("export {set} heap"),
        format!("export {set} static"),
        "sets".to_string(),
    ]
}

/// Compare one query against both endpoints, errors included: an error
/// relayed by the router must reconstruct to the same display text a
/// single daemon's would (verbatim wire relay — no double-wrapping).
fn assert_same(rcl: &mut Client, gcl: &mut Client, q: &str) {
    let routed = rcl.query(q).map_err(|e| format!("{}|{e}", e.code()));
    let golden = gcl.query(q).map_err(|e| format!("{}|{e}", e.code()));
    assert_eq!(routed, golden, "router diverges from single daemon on {q:?}");
}

#[test]
fn sharded_cluster_is_byte_identical_to_a_single_daemon() {
    let cluster = Cluster::start(3, 1);
    let (gaddr, ghandle) = spawn_server(ServerConfig::default());
    let sets = ["amg2006", "sweep3d", "lulesh", "streamcluster", "nw"];
    // Make sure the fixture actually spreads over the cluster.
    let owners: std::collections::BTreeSet<usize> = sets.iter().map(|s| cluster.owner(s)).collect();
    assert!(owners.len() >= 2, "fixture sets all landed on one shard: {owners:?}");

    let mut rcl = Client::connect(&cluster.router_addr).expect("connect router");
    let mut gcl = Client::connect(&gaddr).expect("connect golden");
    for (si, set) in sets.iter().enumerate() {
        for i in 0..4u64 {
            let blob = encode_bundle(&bundle(si as u64 * 10 + i));
            let routed = rcl.ingest(set, Some(i), blob.clone()).expect("routed ingest");
            let golden = gcl.ingest(set, Some(i), blob).expect("golden ingest");
            assert_eq!(routed, golden, "ingest ack for {set}/{i} differs");
        }
    }
    for (si, set) in sets.iter().enumerate() {
        let other = sets[(si + 1) % sets.len()];
        for q in queries(set, other) {
            assert_same(&mut rcl, &mut gcl, &q);
        }
    }
    // Error responses relay byte-identically too.
    for q in ["ranking nosuch samples", "ranking", "bogus verb here", "diff amg2006 nosuch samples"]
    {
        assert_same(&mut rcl, &mut gcl, q);
    }
    // Epoch/partial proxying resolves placement through the router.
    assert_eq!(rcl.epoch("lulesh").expect("epoch via router"), 4);
    let stats = rcl.stats().expect("router stats");
    assert!(stats.starts_with("ROUTER STATS\n"), "{stats}");
    assert!(stats.contains("shards 3"), "{stats}");
    assert!(stats.contains("shard_unreachable 0"), "{stats}");
    assert!(stats.contains("ring_mismatch 0"), "{stats}");
    assert!(stats.contains("partial_merge 0"), "{stats}");
    drop(rcl);
    drop(gcl);
    shutdown(&gaddr, ghandle);
    cluster.stop();
}

#[test]
fn racing_ingest_through_the_router_keeps_queries_byte_identical() {
    // Queries race live ingest traffic on the cluster: a quiescent set
    // is queried while another set is being streamed in from racing
    // threads. Every response for the quiescent set must equal the
    // golden daemon's — and once the dust settles, the raced set must
    // too.
    let cluster = Cluster::start(3, 1);
    let (gaddr, ghandle) = spawn_server(ServerConfig::default());
    let mut rcl = Client::connect(&cluster.router_addr).expect("connect router");
    let mut gcl = Client::connect(&gaddr).expect("connect golden");
    for i in 0..3u64 {
        let blob = encode_bundle(&bundle(i));
        rcl.ingest("steady", Some(i), blob.clone()).expect("routed");
        gcl.ingest("steady", Some(i), blob).expect("golden");
    }
    let total = 24u64;
    let writers: Vec<_> = (0..3u64)
        .map(|w| {
            let addr = cluster.router_addr.clone();
            std::thread::spawn(move || {
                let mut cl = Client::connect(&addr).expect("writer connect");
                for seq in (0..total).filter(|s| s % 3 == w) {
                    cl.ingest("raced", Some(seq), encode_bundle(&bundle(100 + seq)))
                        .expect("raced ingest");
                }
            })
        })
        .collect();
    let golden_steady = gcl.query("ranking steady samples").expect("golden steady");
    for _ in 0..40 {
        let routed = rcl.query("ranking steady samples").expect("routed steady");
        assert_eq!(routed, golden_steady, "quiescent set changed under racing ingest");
    }
    for w in writers {
        w.join().expect("writer");
    }
    for seq in 0..total {
        gcl.ingest("raced", Some(seq), encode_bundle(&bundle(100 + seq))).expect("golden raced");
    }
    for q in queries("raced", "steady") {
        assert_same(&mut rcl, &mut gcl, &q);
    }
    drop(rcl);
    drop(gcl);
    shutdown(&gaddr, ghandle);
    cluster.stop();
}

#[test]
fn dead_replica_fails_over_without_changing_a_byte() {
    // Group 0 lists a dead address first: the listener is bound, its
    // port learned, then dropped — connecting yields ECONNREFUSED, the
    // transport-error class the router must retry past.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr").to_string();
        drop(l);
        addr
    };
    let (live, live_handle) = spawn_server(ServerConfig::default());
    let config = RouterConfig {
        shards: vec![vec![dead, live.clone()]],
        ..RouterConfig::default()
    };
    let (raddr, rhandle) = spawn_router(config);
    let (gaddr, ghandle) = spawn_server(ServerConfig::default());
    let mut rcl = Client::connect(&raddr).expect("connect router");
    let mut gcl = Client::connect(&gaddr).expect("connect golden");
    for i in 0..4u64 {
        let blob = encode_bundle(&bundle(i));
        let routed = rcl.ingest("only", Some(i), blob.clone()).expect("ingest past dead replica");
        let golden = gcl.ingest("only", Some(i), blob).expect("golden ingest");
        assert_eq!(routed, golden);
    }
    for q in queries("only", "only") {
        assert_same(&mut rcl, &mut gcl, &q);
    }
    let stats = rcl.stats().expect("stats");
    let retries: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("retries "))
        .expect("retries line")
        .parse()
        .expect("retries number");
    assert!(retries > 0, "failover must be visible in stats: {stats}");
    assert!(stats.contains("shard_unreachable 0"), "{stats}");
    drop(rcl);
    drop(gcl);
    shutdown(&gaddr, ghandle);
    shutdown(&raddr, rhandle);
    shutdown(&live, live_handle);
}

#[test]
fn exhausted_replicas_are_a_typed_shard_unreachable() {
    let dead = |_| {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr").to_string();
        drop(l);
        addr
    };
    let config = RouterConfig {
        shards: vec![(0..2).map(dead).collect()],
        ..RouterConfig::default()
    };
    let (raddr, rhandle) = spawn_router(config);
    let mut rcl = Client::connect(&raddr).expect("connect router");
    let err = rcl.query("ranking anything samples").expect_err("no replica is alive");
    assert_eq!(err.code(), ServeError::ShardUnreachable(String::new()).code());
    let err = rcl.ingest("anything", None, encode_bundle(&bundle(0))).expect_err("ingest too");
    assert_eq!(err.code(), ServeError::ShardUnreachable(String::new()).code());
    let stats = rcl.stats().expect("stats");
    assert!(stats.contains("shard_unreachable 2"), "{stats}");
    drop(rcl);
    shutdown(&raddr, rhandle);
}

#[test]
fn misplaced_set_is_a_typed_ring_mismatch_at_fan_in() {
    // A set ingested directly into a shard the ring does not map it to
    // (operator error, stale topology) must surface as RingMismatch on
    // the fan-in path — never as a silently wrong listing.
    let cluster = Cluster::start(3, 1);
    let set = "misplaced";
    let owner = cluster.owner(set);
    let wrong = (owner + 1) % cluster.shards.len();
    let mut direct = Client::connect(&cluster.shards[wrong][0].0).expect("connect shard");
    direct.ingest(set, None, encode_bundle(&bundle(0))).expect("direct ingest");
    drop(direct);
    let mut rcl = Client::connect(&cluster.router_addr).expect("connect router");
    let err = rcl.query("sets").expect_err("fan-in must detect the misplaced set");
    assert_eq!(err.code(), ServeError::RingMismatch(String::new()).code());
    assert!(format!("{err}").contains("misplaced"), "{err}");
    let stats = rcl.stats().expect("stats");
    assert!(stats.contains("ring_mismatch 1"), "{stats}");
    drop(rcl);
    cluster.stop();
}

#[test]
fn invalid_topologies_are_refused_at_bind() {
    let refused = |shards: Vec<Vec<String>>, vnodes: u32| {
        let config = RouterConfig { shards, vnodes, ..RouterConfig::default() };
        match Router::bind(config) {
            Err(e) => assert_eq!(e.code(), ServeError::RingMismatch(String::new()).code(), "{e}"),
            Ok(_) => panic!("invalid topology must not bind"),
        }
    };
    refused(vec![], 64);
    refused(vec![vec![]], 64);
    refused(vec![vec!["127.0.0.1:1".into()], vec![]], 64);
    refused(vec![vec!["127.0.0.1:1".into()], vec!["127.0.0.1:1".into()]], 64);
    refused(vec![vec!["127.0.0.1:1".into(), "127.0.0.1:1".into()]], 64);
    refused(vec![vec!["127.0.0.1:1".into()]], 0);
}

#[test]
fn router_cache_serves_warm_hits_and_ingest_invalidates() {
    let cluster = Cluster::start(2, 1);
    let mut rcl = Client::connect(&cluster.router_addr).expect("connect");
    rcl.ingest("s", Some(0), encode_bundle(&bundle(0))).expect("ingest");
    let r1 = rcl.query("ranking s samples").expect("first");
    let r2 = rcl.query("ranking s samples").expect("second");
    assert_eq!(r1, r2, "warm response must be byte-identical");
    let stats = rcl.stats().expect("stats");
    assert!(stats.contains("cache_hits 1"), "{stats}");
    assert!(stats.contains("latency_us[query]"), "{stats}");
    // A new epoch on the owning shard changes the cache key: the next
    // query recomputes from fresh partials.
    rcl.ingest("s", Some(1), encode_bundle(&bundle(1))).expect("ingest 2");
    let r3 = rcl.query("ranking s samples").expect("third");
    assert_ne!(r1, r3, "epoch bump must change the served ranking");
    drop(rcl);
    cluster.stop();
}

#[test]
fn router_reconstruction_cache_counters_are_visible() {
    use dcp_core::metrics::CLASSES;
    let cluster = Cluster::start(2, 1);
    let mut rcl = Client::connect(&cluster.router_addr).expect("connect");
    rcl.ingest("s", Some(0), encode_bundle(&bundle(0))).expect("ingest");
    // Cold query: the partial is fetched and every class materialized.
    rcl.query("ranking s samples").expect("cold");
    let stats = rcl.stats().expect("stats");
    assert!(stats.contains(&format!("dirty_class_rebuilds {CLASSES}")), "{stats}");
    assert!(stats.contains("snapshot_reuse 0"), "{stats}");
    assert!(stats.contains("partial_reuse 0"), "{stats}");
    // A different query at the same epoch misses the response cache but
    // reuses the reconstruction — no partial fetched, nothing rebuilt.
    rcl.query("vars s samples").expect("recon reuse");
    let stats = rcl.stats().expect("stats");
    assert!(stats.contains("snapshot_reuse 1"), "{stats}");
    assert!(stats.contains("partial_reuse 1"), "{stats}");
    assert!(stats.contains(&format!("dirty_class_rebuilds {CLASSES}")), "{stats}");
    // A response-cache hit touches neither counter.
    rcl.query("ranking s samples").expect("warm");
    let stats = rcl.stats().expect("stats");
    assert!(stats.contains("snapshot_reuse 1"), "{stats}");
    // An epoch bump forces a fresh reconstruction.
    rcl.ingest("s", Some(1), encode_bundle(&bundle(1))).expect("ingest 2");
    rcl.query("ranking s samples").expect("cold again");
    let stats = rcl.stats().expect("stats");
    assert!(stats.contains(&format!("dirty_class_rebuilds {}", 2 * CLASSES)), "{stats}");
    assert!(stats.contains("partial_reuse 1"), "{stats}");
    drop(rcl);
    cluster.stop();
}

#[test]
fn router_drain_refuses_work_and_leaves_shards_serving() {
    let cluster = Cluster::start(2, 1);
    let mut a = Client::connect(&cluster.router_addr).expect("connect a");
    let mut b = Client::connect(&cluster.router_addr).expect("connect b");
    a.ingest("s", None, encode_bundle(&bundle(0))).expect("ingest");
    assert_eq!(b.shutdown().expect("shutdown"), "draining");
    match a.query("ranking s samples") {
        Err(e) => assert_eq!(e.code(), ServeError::ShuttingDown.code()),
        Ok(_) => panic!("draining router must refuse new queries"),
    }
    drop(a);
    drop(b);
    let Cluster { router_addr, router_handle, shards, .. } = cluster;
    router_handle.join().expect("router join");
    assert!(
        Client::connect_with_timeout(&router_addr, Duration::from_millis(200))
            .and_then(|mut c| c.ping())
            .is_err(),
        "router must be gone after drain"
    );
    // The shards are untouched by the router's drain.
    for group in &shards {
        for (addr, _) in group {
            let mut cl = Client::connect(addr).expect("shard still up");
            assert_eq!(cl.ping().expect("ping"), "pong");
        }
    }
    for group in shards {
        for (addr, handle) in group {
            shutdown(&addr, handle);
        }
    }
}
