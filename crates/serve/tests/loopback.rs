//! Loopback end-to-end: real sockets, concurrent clients, and the
//! determinism contract — a profile set assembled by a racing client
//! pool serves trees byte-identical to `merge_encoded_sequential` over
//! the same blobs in sequence order.

use std::time::Duration;

use dcp_cct::{encode, merge_encoded_sequential, Cct, Frame, ROOT};
use dcp_core::metrics::{StorageClass, WIDTH};
use dcp_core::stored::{encode_bundle, StoredBundle};
use dcp_serve::{Client, Server, ServerConfig, ServeError};
use dcp_support::bytes::Bytes;
use dcp_support::pool;

fn spawn_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    Client::connect(addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("join");
}

/// A distinct small bundle per `seed`: a heap tree and a static tree
/// whose shapes overlap across seeds (so merging actually folds paths)
/// but whose values differ (so ordering mistakes change bytes).
fn bundle(seed: u64) -> StoredBundle {
    let mut heap = Cct::new(WIDTH);
    let hm = heap.child(ROOT, Frame::HeapMarker);
    let p = heap.child(hm, Frame::Proc(seed % 3));
    let s = heap.child(p, Frame::Stmt(0x100 + seed % 5));
    heap.add(s, 0, 1 + seed);
    heap.add(s, 1, 100 * (seed + 1));
    let mut stat = Cct::new(WIDTH);
    let v = stat.child(ROOT, Frame::StaticVar(seed % 2));
    stat.add(v, 0, seed + 7);
    let mut b = StoredBundle::default();
    b.profiles[StorageClass::Heap.idx()].push(encode(&heap));
    b.profiles[StorageClass::Static.idx()].push(encode(&stat));
    b.names.insert(Frame::Proc(seed % 3), format!("proc_{}", seed % 3));
    b.names.insert(Frame::StaticVar(seed % 2), format!("g_{}", seed % 2));
    b.stats.samples = 1 + seed;
    b
}

fn hex(raw: &[u8]) -> String {
    raw.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn concurrent_ingest_is_byte_identical_to_sequential_merge() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    // A client pool sized like the compute pool, racing over real
    // sockets; client-assigned sequence numbers pin the merge order.
    let clients = pool::parallelism().max(2);
    let per_client = 4usize;
    let total = clients * per_client;
    let bundles: Vec<StoredBundle> = (0..total as u64).map(bundle).collect();
    let encoded: Vec<Bytes> = bundles.iter().map(encode_bundle).collect();

    let mut threads = Vec::new();
    for c in 0..clients {
        let addr = addr.clone();
        // Client c takes every clients-th sequence number, so commits
        // interleave across connections instead of arriving in runs.
        let mine: Vec<(u64, Bytes)> = (0..total)
            .filter(|i| i % clients == c)
            .map(|i| (i as u64, encoded[i].clone()))
            .collect();
        threads.push(std::thread::spawn(move || {
            let mut cl = Client::connect(&addr).expect("connect");
            for (seq, blob) in mine {
                cl.ingest("race", Some(seq), blob).expect("ingest");
            }
        }));
    }
    for t in threads {
        t.join().expect("client thread");
    }

    let mut cl = Client::connect(&addr).expect("connect");
    for class in [StorageClass::Heap, StorageClass::Static] {
        // Reference: one sequential merge over the same blobs in
        // sequence order — the offline ground truth.
        let blobs: Vec<Bytes> = bundles
            .iter()
            .flat_map(|b| b.profiles[class.idx()].iter().cloned())
            .collect();
        let reference = merge_encoded_sequential(blobs, WIDTH).expect("reference merge");
        let name = match class {
            StorageClass::Heap => "heap",
            _ => "static",
        };
        let served = cl.query(&format!("export race {name}")).expect("export");
        assert_eq!(
            served,
            hex(&encode(&reference)),
            "served {name} tree differs from the sequential merge"
        );
    }
    // All committed: no sequence gap left behind.
    let sets = cl.query("sets").expect("sets");
    assert!(sets.contains(&format!("race bundles={total} epoch={total} gap=0")), "{sets}");
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn out_of_order_and_gapped_ingest_commits_deterministically() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut cl = Client::connect(&addr).expect("connect");
    let bundles: Vec<StoredBundle> = (0..5u64).map(bundle).collect();
    // Send 4, 2, 0, 3, 1: nothing commits past the first gap until the
    // gap fills; the final tree must still equal sequential order.
    for &i in &[4usize, 2, 0, 3, 1] {
        cl.ingest("ooo", Some(i as u64), encode_bundle(&bundles[i])).expect("ingest");
    }
    let blobs: Vec<Bytes> = bundles
        .iter()
        .flat_map(|b| b.profiles[StorageClass::Heap.idx()].iter().cloned())
        .collect();
    let reference = merge_encoded_sequential(blobs, WIDTH).expect("reference");
    let served = cl.query("export ooo heap").expect("export");
    assert_eq!(served, hex(&encode(&reference)));
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn byte_budget_rejection_is_typed_and_sticky() {
    let (addr, handle) = spawn_server(ServerConfig {
        byte_budget: 1, // everything real is over budget
        ..ServerConfig::default()
    });
    let mut cl = Client::connect(&addr).expect("connect");
    let err = cl.ingest("s", None, encode_bundle(&bundle(0))).expect_err("over budget");
    assert_eq!(err.code(), ServeError::BudgetExceeded { budget: 0, stored: 0, requested: 0 }.code());
    // Nothing was stored: the set does not exist.
    let err = cl.query("ranking s samples").expect_err("set must not exist");
    assert_eq!(err.code(), ServeError::UnknownSet(String::new()).code());
    let stats = cl.stats().expect("stats");
    assert!(stats.contains("bytes_stored 0"), "{stats}");
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn duplicate_sequence_is_rejected() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut cl = Client::connect(&addr).expect("connect");
    cl.ingest("s", Some(0), encode_bundle(&bundle(0))).expect("first");
    let err = cl.ingest("s", Some(0), encode_bundle(&bundle(1))).expect_err("dup");
    assert_eq!(err.code(), ServeError::DuplicateSeq(0).code());
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn empty_set_is_served_with_defined_views() {
    // The served face of the merge_encoded(vec![], w) edge: a set whose
    // only bundle carries zero profile blobs renders every view.
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut cl = Client::connect(&addr).expect("connect");
    cl.ingest("empty", None, encode_bundle(&StoredBundle::default())).expect("ingest");
    for q in [
        "ranking empty samples",
        "topdown empty heap latency",
        "bottomup empty remote",
        "flat empty heap tlb",
        "vars empty stores",
        "diff empty empty samples",
        "export empty heap",
    ] {
        let resp = cl.query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        assert!(!resp.is_empty(), "{q} returned nothing");
    }
    // The empty heap tree exports as a root-only profile, not garbage.
    let served = cl.query("export empty heap").expect("export");
    assert_eq!(served, hex(&encode(&Cct::new(WIDTH))));
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn cache_hits_and_stats_are_visible_over_the_wire() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut cl = Client::connect(&addr).expect("connect");
    cl.ingest("s", None, encode_bundle(&bundle(0))).expect("ingest");
    let r1 = cl.query("ranking s samples").expect("first");
    let r2 = cl.query("ranking s samples").expect("second");
    assert_eq!(r1, r2, "cached response must be byte-identical");
    let stats = cl.stats().expect("stats");
    assert!(stats.contains("ingests 1"), "{stats}");
    assert!(stats.contains("cache_hits 1"), "{stats}");
    assert!(stats.contains("latency_us[query]"), "{stats}");
    assert!(stats.contains("latency_us[ingest]"), "{stats}");
    // Ingest invalidates: the same query recomputes under the new epoch.
    cl.ingest("s", None, encode_bundle(&bundle(1))).expect("ingest 2");
    let r3 = cl.query("ranking s samples").expect("third");
    assert_ne!(r1, r3, "epoch bump must change the served ranking");
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn shutdown_drains_and_refuses_new_work() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut a = Client::connect(&addr).expect("connect a");
    let mut b = Client::connect(&addr).expect("connect b");
    a.ingest("s", None, encode_bundle(&bundle(0))).expect("ingest");
    assert_eq!(b.shutdown().expect("shutdown"), "draining");
    // The already-open connection gets a typed refusal for new queries.
    match a.query("ranking s samples") {
        Err(e) => assert_eq!(e.code(), ServeError::ShuttingDown.code()),
        Ok(_) => panic!("draining server must refuse new queries"),
    }
    drop(a);
    drop(b);
    // serve() returns: every worker joined, nothing left hanging.
    handle.join().expect("join");
    // And the port is actually released.
    assert!(
        Client::connect_with_timeout(&addr, Duration::from_millis(200))
            .and_then(|mut c| c.ping())
            .is_err(),
        "daemon must be gone after drain"
    );
}
