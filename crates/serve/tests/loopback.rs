//! Loopback end-to-end: real sockets, concurrent clients, and the
//! determinism contract — a profile set assembled by a racing client
//! pool serves trees byte-identical to `merge_encoded_sequential` over
//! the same blobs in sequence order.

use std::time::Duration;

use dcp_cct::{encode, merge_encoded_sequential, Cct, Frame, ROOT};
use dcp_core::metrics::{StorageClass, WIDTH};
use dcp_core::stored::{encode_bundle, StoredBundle};
use dcp_serve::{Client, Server, ServerConfig, ServeError};
use dcp_support::bytes::Bytes;
use dcp_support::pool;

fn spawn_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    Client::connect(addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("join");
}

/// A distinct small bundle per `seed`: a heap tree and a static tree
/// whose shapes overlap across seeds (so merging actually folds paths)
/// but whose values differ (so ordering mistakes change bytes).
fn bundle(seed: u64) -> StoredBundle {
    let mut heap = Cct::new(WIDTH);
    let hm = heap.child(ROOT, Frame::HeapMarker);
    let p = heap.child(hm, Frame::Proc(seed % 3));
    let s = heap.child(p, Frame::Stmt(0x100 + seed % 5));
    heap.add(s, 0, 1 + seed);
    heap.add(s, 1, 100 * (seed + 1));
    let mut stat = Cct::new(WIDTH);
    let v = stat.child(ROOT, Frame::StaticVar(seed % 2));
    stat.add(v, 0, seed + 7);
    let mut b = StoredBundle::default();
    b.profiles[StorageClass::Heap.idx()].push(encode(&heap));
    b.profiles[StorageClass::Static.idx()].push(encode(&stat));
    b.names.insert(Frame::Proc(seed % 3), format!("proc_{}", seed % 3));
    b.names.insert(Frame::StaticVar(seed % 2), format!("g_{}", seed % 2));
    b.stats.samples = 1 + seed;
    b
}

fn hex(raw: &[u8]) -> String {
    raw.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn concurrent_ingest_is_byte_identical_to_sequential_merge() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    // A client pool sized like the compute pool, racing over real
    // sockets; client-assigned sequence numbers pin the merge order.
    let clients = pool::parallelism().max(2);
    let per_client = 4usize;
    let total = clients * per_client;
    let bundles: Vec<StoredBundle> = (0..total as u64).map(bundle).collect();
    let encoded: Vec<Bytes> = bundles.iter().map(encode_bundle).collect();

    let mut threads = Vec::new();
    for c in 0..clients {
        let addr = addr.clone();
        // Client c takes every clients-th sequence number, so commits
        // interleave across connections instead of arriving in runs.
        let mine: Vec<(u64, Bytes)> = (0..total)
            .filter(|i| i % clients == c)
            .map(|i| (i as u64, encoded[i].clone()))
            .collect();
        threads.push(std::thread::spawn(move || {
            let mut cl = Client::connect(&addr).expect("connect");
            for (seq, blob) in mine {
                cl.ingest("race", Some(seq), blob).expect("ingest");
            }
        }));
    }
    for t in threads {
        t.join().expect("client thread");
    }

    let mut cl = Client::connect(&addr).expect("connect");
    for class in [StorageClass::Heap, StorageClass::Static] {
        // Reference: one sequential merge over the same blobs in
        // sequence order — the offline ground truth.
        let blobs: Vec<Bytes> = bundles
            .iter()
            .flat_map(|b| b.profiles[class.idx()].iter().cloned())
            .collect();
        let reference = merge_encoded_sequential(blobs, WIDTH).expect("reference merge");
        let name = match class {
            StorageClass::Heap => "heap",
            _ => "static",
        };
        let served = cl.query(&format!("export race {name}")).expect("export");
        assert_eq!(
            served,
            hex(&encode(&reference)),
            "served {name} tree differs from the sequential merge"
        );
    }
    // All committed: no sequence gap left behind.
    let sets = cl.query("sets").expect("sets");
    assert!(sets.contains(&format!("race bundles={total} epoch={total} gap=0")), "{sets}");
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn out_of_order_and_gapped_ingest_commits_deterministically() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut cl = Client::connect(&addr).expect("connect");
    let bundles: Vec<StoredBundle> = (0..5u64).map(bundle).collect();
    // Send 4, 2, 0, 3, 1: nothing commits past the first gap until the
    // gap fills; the final tree must still equal sequential order.
    for &i in &[4usize, 2, 0, 3, 1] {
        cl.ingest("ooo", Some(i as u64), encode_bundle(&bundles[i])).expect("ingest");
    }
    let blobs: Vec<Bytes> = bundles
        .iter()
        .flat_map(|b| b.profiles[StorageClass::Heap.idx()].iter().cloned())
        .collect();
    let reference = merge_encoded_sequential(blobs, WIDTH).expect("reference");
    let served = cl.query("export ooo heap").expect("export");
    assert_eq!(served, hex(&encode(&reference)));
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn byte_budget_rejection_is_typed_and_sticky() {
    let (addr, handle) = spawn_server(ServerConfig {
        byte_budget: 1, // everything real is over budget
        ..ServerConfig::default()
    });
    let mut cl = Client::connect(&addr).expect("connect");
    let err = cl.ingest("s", None, encode_bundle(&bundle(0))).expect_err("over budget");
    assert_eq!(err.code(), ServeError::BudgetExceeded { budget: 0, stored: 0, requested: 0 }.code());
    // Nothing was stored: the set does not exist.
    let err = cl.query("ranking s samples").expect_err("set must not exist");
    assert_eq!(err.code(), ServeError::UnknownSet(String::new()).code());
    let stats = cl.stats().expect("stats");
    assert!(stats.contains("bytes_stored 0"), "{stats}");
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn duplicate_sequence_is_rejected() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut cl = Client::connect(&addr).expect("connect");
    cl.ingest("s", Some(0), encode_bundle(&bundle(0))).expect("first");
    let err = cl.ingest("s", Some(0), encode_bundle(&bundle(1))).expect_err("dup");
    assert_eq!(err.code(), ServeError::DuplicateSeq(0).code());
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn empty_set_is_served_with_defined_views() {
    // The served face of the merge_encoded(vec![], w) edge: a set whose
    // only bundle carries zero profile blobs renders every view.
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut cl = Client::connect(&addr).expect("connect");
    cl.ingest("empty", None, encode_bundle(&StoredBundle::default())).expect("ingest");
    for q in [
        "ranking empty samples",
        "topdown empty heap latency",
        "bottomup empty remote",
        "flat empty heap tlb",
        "vars empty stores",
        "diff empty empty samples",
        "export empty heap",
    ] {
        let resp = cl.query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        assert!(!resp.is_empty(), "{q} returned nothing");
    }
    // The empty heap tree exports as a root-only profile, not garbage.
    let served = cl.query("export empty heap").expect("export");
    assert_eq!(served, hex(&encode(&Cct::new(WIDTH))));
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn cache_hits_and_stats_are_visible_over_the_wire() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut cl = Client::connect(&addr).expect("connect");
    cl.ingest("s", None, encode_bundle(&bundle(0))).expect("ingest");
    let r1 = cl.query("ranking s samples").expect("first");
    let r2 = cl.query("ranking s samples").expect("second");
    assert_eq!(r1, r2, "cached response must be byte-identical");
    let stats = cl.stats().expect("stats");
    assert!(stats.contains("ingests 1"), "{stats}");
    assert!(stats.contains("cache_hits 1"), "{stats}");
    assert!(stats.contains("latency_us[query]"), "{stats}");
    assert!(stats.contains("latency_us[ingest]"), "{stats}");
    // Ingest invalidates: the same query recomputes under the new epoch.
    cl.ingest("s", None, encode_bundle(&bundle(1))).expect("ingest 2");
    let r3 = cl.query("ranking s samples").expect("third");
    assert_ne!(r1, r3, "epoch bump must change the served ranking");
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn incremental_read_counters_prove_dirty_class_tracking() {
    // The ISSUE's counter-asserted claim: a snapshot after an ingest
    // touching exactly one class rebuilds exactly one class, and
    // same-epoch queries reuse the snapshot outright.
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut cl = Client::connect(&addr).expect("connect");
    let mut heap = Cct::new(WIDTH);
    let hm = heap.child(ROOT, Frame::HeapMarker);
    heap.add(hm, 0, 3);
    let mut b = StoredBundle::default();
    b.profiles[StorageClass::Heap.idx()].push(encode(&heap));
    b.stats.samples = 1;
    cl.ingest("inc", None, encode_bundle(&b)).expect("ingest");
    // The first query folds exactly the one dirty class.
    cl.query("ranking inc samples").expect("query");
    let stats = cl.stats().expect("stats");
    assert!(stats.contains("dirty_class_rebuilds 1"), "{stats}");
    assert!(stats.contains("snapshot_reuse 0"), "{stats}");
    assert!(stats.contains("partial_reuse 0"), "{stats}");
    // A different query at the same epoch reuses the snapshot — no new
    // rebuild.
    cl.query("vars inc samples").expect("query 2");
    let stats = cl.stats().expect("stats");
    assert!(stats.contains("snapshot_reuse 1"), "{stats}");
    assert!(stats.contains("dirty_class_rebuilds 1"), "{stats}");
    // A second heap-only ingest dirties only the heap class again.
    cl.ingest("inc", None, encode_bundle(&b)).expect("ingest 2");
    cl.query("ranking inc samples").expect("query 3");
    let stats = cl.stats().expect("stats");
    assert!(stats.contains("dirty_class_rebuilds 2"), "{stats}");
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn panicking_session_does_not_take_the_daemon_down() {
    // Regression: the store lock used to be a poisoning std Mutex
    // unwrapped with `expect("store poisoned")`. One panic while holding
    // it killed every later session on the poison, while the accept loop
    // kept queueing sockets nobody would drain — new clients hung. The
    // state now sits behind a poison-recovering lock.
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let state = server.state_handle();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    let mut cl = Client::connect(&addr).expect("connect");
    cl.ingest("s", Some(0), encode_bundle(&bundle(0))).expect("ingest");
    let before = cl.query("export s heap").expect("export");

    // Inject exactly what a buggy session would do: panic while holding
    // the state lock.
    let poisoner = std::thread::spawn(move || {
        let _guard = state.lock();
        panic!("injected panic while holding the store lock");
    });
    assert!(poisoner.join().is_err(), "holder must have panicked");

    // The daemon still serves — same bytes — and still takes writes.
    let mut cl = Client::connect(&addr).expect("connect after panic");
    assert_eq!(cl.ping().expect("ping"), "pong");
    assert_eq!(cl.query("export s heap").expect("export after panic"), before);
    cl.ingest("s", Some(1), encode_bundle(&bundle(1))).expect("ingest after panic");
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn mixing_sequence_disciplines_is_refused_not_stranded() {
    // Regression: an arrival-order ingest into a set with an open
    // sequence gap used to be assigned `last pending key + 1` — a slot
    // behind the gap, silently withheld from every query. It is now a
    // typed refusal, and pure arrival-order sets commit immediately.
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut cl = Client::connect(&addr).expect("connect");
    cl.ingest("m", Some(5), encode_bundle(&bundle(0))).expect("buffered behind gap");
    let err = cl.ingest("m", None, encode_bundle(&bundle(1))).expect_err("mixed modes");
    assert_eq!(
        err.code(),
        ServeError::SeqModeMismatch { set: String::new(), explicit: true }.code()
    );
    // Arrival-order sets are never stranded: each ingest commits at
    // once and is immediately visible.
    for i in 0..3u64 {
        cl.ingest("arr", None, encode_bundle(&bundle(i))).expect("arrival");
        let sets = cl.query("sets").expect("sets");
        assert!(
            sets.contains(&format!("arr bundles={} epoch={} gap=0", i + 1, i + 1)),
            "ingest {i} must be committed, not buffered: {sets}"
        );
    }
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn reorder_buffer_cap_is_typed_and_visible_in_stats() {
    // Regression: the reorder buffer was unbounded and never refunded —
    // a client buffering far-future sequence numbers could hold memory
    // hostage forever with no trace in `stats`.
    let one = encode_bundle(&bundle(0)).len() as u64;
    let (addr, handle) = spawn_server(ServerConfig {
        pending_cap: one,
        ..ServerConfig::default()
    });
    let mut cl = Client::connect(&addr).expect("connect");
    cl.ingest("s", Some(10), encode_bundle(&bundle(0))).expect("fits under cap");
    let err = cl.ingest("s", Some(11), encode_bundle(&bundle(1))).expect_err("over cap");
    assert_eq!(
        err.code(),
        ServeError::PendingCapExceeded { cap: 0, pending: 0, requested: 0 }.code()
    );
    let stats = cl.stats().expect("stats");
    assert!(stats.contains(&format!("pending_bytes {one}")), "{stats}");
    assert!(stats.contains(&format!("gap=1 gap_bytes={one}")), "{stats}");
    // Filling the gap refunds the charge and buffering works again.
    for s in 0..10u64 {
        cl.ingest("s", Some(s), encode_bundle(&bundle(s))).expect("fills");
    }
    let stats = cl.stats().expect("stats");
    assert!(stats.contains("pending_bytes 0"), "{stats}");
    // Same-sized bundle as the first (encoded size varies with seed):
    // it fits again because the commit refunded the whole charge.
    cl.ingest("s", Some(12), encode_bundle(&bundle(0))).expect("refunded buffer");
    drop(cl);
    shutdown(&addr, handle);
}

#[test]
fn restart_mid_stream_resumes_byte_identical() {
    // Satellite round trip for the durability layer: stop a durable
    // daemon mid-stream, restart it over the same data directory, push
    // the rest, and the served trees must equal the sequential golden
    // over the full bundle list — plus a second daemon that never
    // restarted must agree response-for-response.
    let dir = std::env::temp_dir().join(format!("dcp-loopback-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = || ServerConfig {
        data_dir: Some(dir.clone()),
        snapshot_every: 2, // exercise snapshot + wal-tail recovery
        ..ServerConfig::default()
    };
    let total = 6u64;
    let bundles: Vec<StoredBundle> = (0..total).map(bundle).collect();

    let (addr, handle) = spawn_server(durable());
    let mut cl = Client::connect(&addr).expect("connect");
    for (i, b) in bundles.iter().take(3).enumerate() {
        cl.ingest("w", Some(i as u64), encode_bundle(b)).expect("ingest");
    }
    drop(cl);
    shutdown(&addr, handle);

    let (addr, handle) = spawn_server(durable());
    let mut cl = Client::connect(&addr).expect("connect");
    let sets = cl.query("sets").expect("sets");
    assert!(sets.contains("w bundles=3 epoch=3 gap=0"), "recovered state: {sets}");
    for (i, b) in bundles.iter().enumerate().skip(3) {
        cl.ingest("w", Some(i as u64), encode_bundle(b)).expect("ingest after restart");
    }

    // Golden 1: the offline sequential merge.
    let blobs: Vec<Bytes> = bundles
        .iter()
        .flat_map(|b| b.profiles[StorageClass::Heap.idx()].iter().cloned())
        .collect();
    let reference = merge_encoded_sequential(blobs, WIDTH).expect("reference");
    assert_eq!(cl.query("export w heap").expect("export"), hex(&encode(&reference)));

    // Golden 2: an uncrashed, memory-only daemon fed the same stream.
    let (gaddr, ghandle) = spawn_server(ServerConfig::default());
    let mut gcl = Client::connect(&gaddr).expect("connect golden");
    for (i, b) in bundles.iter().enumerate() {
        gcl.ingest("w", Some(i as u64), encode_bundle(b)).expect("golden ingest");
    }
    for q in ["export w heap", "export w static", "ranking w samples", "vars w samples", "sets"] {
        assert_eq!(
            cl.query(q).expect(q),
            gcl.query(q).expect(q),
            "restarted daemon diverges from the uncrashed one on {q:?}"
        );
    }
    drop(gcl);
    shutdown(&gaddr, ghandle);
    drop(cl);
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_and_refuses_new_work() {
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut a = Client::connect(&addr).expect("connect a");
    let mut b = Client::connect(&addr).expect("connect b");
    a.ingest("s", None, encode_bundle(&bundle(0))).expect("ingest");
    assert_eq!(b.shutdown().expect("shutdown"), "draining");
    // The already-open connection gets a typed refusal for new queries.
    match a.query("ranking s samples") {
        Err(e) => assert_eq!(e.code(), ServeError::ShuttingDown.code()),
        Ok(_) => panic!("draining server must refuse new queries"),
    }
    drop(a);
    drop(b);
    // serve() returns: every worker joined, nothing left hanging.
    handle.join().expect("join");
    // And the port is actually released.
    assert!(
        Client::connect_with_timeout(&addr, Duration::from_millis(200))
            .and_then(|mut c| c.ping())
            .is_err(),
        "daemon must be gone after drain"
    );
}

#[test]
fn pipelined_ingest_is_byte_identical_to_serial_and_refusals_stay_in_window() {
    // Two daemons, same bundle stream: one fed with strict
    // request/response, one through a 5-deep pipelined window. The ack
    // texts must match push for push and the served trees must match
    // byte for byte — the window changes scheduling, never outcomes.
    let (addr_a, handle_a) = spawn_server(ServerConfig::default());
    let (addr_b, handle_b) = spawn_server(ServerConfig::default());
    let total = 12u64;
    let bundles: Vec<StoredBundle> = (0..total).map(bundle).collect();
    let encoded: Vec<Bytes> = bundles.iter().map(encode_bundle).collect();

    let mut ca = Client::connect(&addr_a).expect("connect serial");
    let mut serial_acks = Vec::new();
    for (i, blob) in encoded.iter().enumerate() {
        serial_acks.push(ca.ingest("w", Some(i as u64), blob.clone()).expect("serial ingest"));
    }

    let mut cb = Client::connect(&addr_b).expect("connect pipelined");
    let mut pipe = cb.pipeline(5);
    let mut acks = Vec::new();
    for (i, blob) in encoded.iter().enumerate() {
        if let Some(ack) = pipe.push("w", Some(i as u64), blob.clone()).expect("push") {
            acks.push(ack.expect("windowed ingest refused"));
        }
    }
    for ack in pipe.drain().expect("drain") {
        acks.push(ack.expect("windowed ingest refused"));
    }
    assert_eq!(acks.len(), serial_acks.len(), "every push is acked exactly once");
    for (a, serial) in acks.iter().zip(&serial_acks) {
        assert_eq!(
            &dcp_serve::format_ingest_ack(&a.set, a.seq, a.epoch),
            serial,
            "windowed ack text diverges from the serial daemon's"
        );
    }

    // A mid-window refusal is an inner typed error and the window keeps
    // moving: the duplicate is refused, the fresh push lands.
    let mut pipe = cb.pipeline(4);
    assert!(pipe.push("w", Some(3), encoded[3].clone()).expect("push dup").is_none());
    assert!(pipe.push("w", Some(total), encoded[0].clone()).expect("push fresh").is_none());
    let results = pipe.drain().expect("drain survives a refusal");
    assert_eq!(results.len(), 2);
    match &results[0] {
        Err(e) if e.code() == ServeError::DuplicateSeq(0).code() => {}
        other => panic!("duplicate push must relay DuplicateSeq, got {other:?}"),
    }
    assert_eq!(results[1].as_ref().expect("fresh push lands").seq, total);
    ca.ingest("w", Some(total), encoded[0].clone()).expect("serial mirror");

    for q in ["export w heap", "export w static", "sets"] {
        let a = ca.query(q).expect("serial query");
        let b = cb.query(q).expect("pipelined query");
        assert_eq!(a, b, "{q:?} diverges between serial and pipelined ingest");
    }
    let sets = cb.query("sets").expect("sets");
    let n = total + 1;
    assert!(sets.contains(&format!("w bundles={n} epoch={n} gap=0")), "{sets}");

    drop(ca);
    drop(cb);
    shutdown(&addr_a, handle_a);
    shutdown(&addr_b, handle_b);
}
