//! Wire-protocol robustness sweep (fuzz-style, deterministic seeds) —
//! the serving-layer mirror of `crates/cct/tests/robustness.rs`.
//!
//! The hardening claim is the same and absolute: *no* crafted byte
//! stream makes either side of the protocol panic or hang. A corpus of
//! valid frames is ground three ways — truncation at every offset,
//! a single-bit flip at every position, and outright random bytes —
//! through the frame reader and both body parsers; a live server then
//! takes the same abuse over real sockets, bounded by its read timeout.

use std::io::{Cursor, Write};
use std::net::TcpStream;
use std::time::Duration;

use dcp_cct::{encode, Cct, Frame, ROOT};
use dcp_core::metrics::WIDTH;
use dcp_core::stored::{encode_bundle, StoredBundle};
use dcp_serve::wire::{
    encode_request, encode_response, parse_request, parse_response, read_frame, write_frame,
    Request, Response, MAX_FRAME,
};
use dcp_serve::{Client, Router, RouterConfig, Server, ServerConfig, ServeError};
use dcp_support::bytes::BytesMut;
use dcp_support::rng::SmallRng;

fn frame_bytes(k: u8, body: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, k, body).expect("write");
    wire
}

/// A small but non-trivial bundle: one heap tree, names, a hint, an
/// allocation record.
fn sample_bundle() -> StoredBundle {
    let mut t = Cct::new(WIDTH);
    let hm = t.child(ROOT, Frame::HeapMarker);
    let p = t.child(hm, Frame::Proc(0));
    let s = t.child(p, Frame::Stmt(0x40));
    t.add(s, 0, 17);
    t.add(s, 1, 400);
    let mut b = StoredBundle::default();
    b.profiles[1].push(encode(&t));
    b.names.insert(Frame::Proc(0), "main".into());
    b.names.insert(Frame::Stmt(0x40), "main:480".into());
    b.names.insert(Frame::Root, "<program root>".into());
    b.names.insert(Frame::HeapMarker, "heap data accesses".into());
    b.hints.insert(0x40, "S_diag_j".into());
    b.alloc_info.push((vec![Frame::HeapMarker, Frame::Proc(0)], 1, 8192, 1));
    b.stats.samples = 17;
    b
}

/// Valid frames in both directions: every request kind (ingest with a
/// real bundle) and both response kinds.
fn corpus() -> Vec<(bool, Vec<u8>)> {
    let bundle = encode_bundle(&sample_bundle());
    let reqs = [
        Request::Ping,
        Request::Stats,
        Request::Shutdown,
        Request::Query("ranking nw latency 10".into()),
        Request::Ingest { set: "nw".into(), seq: Some(3), bundle: bundle.clone() },
        Request::Ingest { set: "π-set".into(), seq: None, bundle: bundle.clone() },
        // The routed kinds ride the same frame grind as everything else.
        Request::Epoch("nw".into()),
        Request::Partial("π-set".into()),
    ];
    let mut out = Vec::new();
    for r in reqs {
        let (k, body) = encode_request(&r);
        out.push((true, frame_bytes(k, &body)));
    }
    let partial = dcp_serve::encode_set_partial(&dcp_serve::SetPartial {
        epoch: 1,
        bundles: 1,
        blob_bytes: bundle.len() as u64,
        state: bundle,
    });
    for r in [
        Response::Ok("VARIABLE RANKING metric LATENCY (total 400)\n".into()),
        Response::Err(8, "unknown profile set 'nope'".into()),
        Response::Data(partial),
    ] {
        let (k, body) = encode_response(&r);
        out.push((false, frame_bytes(k, &body)));
    }
    out
}

/// Run a mutated frame through read + the appropriate parser. The
/// assertion is reaching the end: typed error or benign parse, never a
/// panic or a hang.
fn grind(is_request: bool, wire: &[u8]) {
    let mut cur = Cursor::new(wire.to_vec());
    match read_frame(&mut cur, MAX_FRAME) {
        Ok(Some((k, body))) => {
            let _ = if is_request {
                parse_request(k, body).map(|_| ())
            } else {
                parse_response(k, body).map(|_| ())
            };
        }
        Ok(None) | Err(_) => {}
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    for (is_request, wire) in corpus() {
        for cut in 0..wire.len() {
            let mut cur = Cursor::new(wire[..cut].to_vec());
            match read_frame(&mut cur, MAX_FRAME) {
                Ok(None) => assert_eq!(cut, 0, "only the empty prefix is a clean EOF"),
                Err(ServeError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        // Sanity: the whole frame reads and parses.
        grind(is_request, &wire);
        let mut cur = Cursor::new(wire.clone());
        let (k, body) = read_frame(&mut cur, MAX_FRAME).expect("read").expect("frame");
        if is_request {
            parse_request(k, body).expect("corpus requests are valid");
        } else {
            parse_response(k, body).expect("corpus responses are valid");
        }
    }
}

#[test]
fn every_single_bit_flip_is_handled() {
    // A flip may still parse (a flipped byte inside a query string is
    // just a different query) but must never panic or hang. Flips in
    // the magic must always be rejected as BadMagic.
    for (is_request, wire) in corpus() {
        for pos in 0..wire.len() {
            for bit in 0..8u8 {
                let mut mutated = wire.clone();
                mutated[pos] ^= 1 << bit;
                if pos < 4 {
                    let mut cur = Cursor::new(mutated);
                    assert!(
                        matches!(read_frame(&mut cur, MAX_FRAME), Err(ServeError::BadMagic)),
                        "flip at byte {pos} bit {bit} must be BadMagic"
                    );
                    continue;
                }
                grind(is_request, &mutated);
            }
        }
    }
}

#[test]
fn random_bytes_never_panic() {
    // Pure fuzz against the frame reader, with and without a valid
    // magic prefix.
    let mut g = SmallRng::seed_from_u64(0xd_c95);
    for case in 0..4096 {
        let len = g.gen_range(0usize..120);
        let mut raw = Vec::with_capacity(len + 4);
        if case % 2 == 0 {
            raw.extend_from_slice(b"DCPS");
        }
        for _ in 0..len {
            raw.push((g.next_u64() & 0xff) as u8);
        }
        let mut cur = Cursor::new(raw);
        if let Ok(Some((k, body))) = read_frame(&mut cur, MAX_FRAME) {
            let _ = parse_request(k, body.clone()).map(|_| ());
            let _ = parse_response(k, body).map(|_| ());
        }
    }
}

#[test]
fn mutated_ingest_bodies_reach_a_typed_bundle_error() {
    // Flips inside the embedded bundle must surface as Codec errors (or
    // parse as a different-but-valid bundle), never panic — the server
    // decodes every ingest body in full before touching the store.
    let (k, body) = encode_request(&Request::Ingest {
        set: "s".into(),
        seq: None,
        bundle: encode_bundle(&sample_bundle()),
    });
    for pos in 0..body.len() {
        let mut mutated = body.as_slice().to_vec();
        mutated[pos] ^= 1;
        let mut buf = BytesMut::with_capacity(mutated.len());
        buf.put_slice(&mutated);
        if let Ok(Request::Ingest { bundle, .. }) = parse_request(k, buf.freeze()) {
            let _ = dcp_core::stored::decode_bundle(bundle);
        }
    }
}

fn spawn_server() -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        read_timeout: Duration::from_millis(500),
        sessions: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    Client::connect(addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn live_server_survives_garbage_and_half_frames() {
    let (addr, handle) = spawn_server();

    // Garbage bytes: the server answers with an ERR frame or closes;
    // either way this returns within the timeout instead of hanging.
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    s.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write garbage");
    match read_frame(&mut s, MAX_FRAME) {
        Ok(Some((k, body))) => match parse_response(k, body).expect("parseable response") {
            Response::Err(code, _) => assert_eq!(code, ServeError::BadMagic.code()),
            ok => panic!("garbage must not succeed: {ok:?}"),
        },
        Ok(None) | Err(_) => {} // closed on us: also acceptable
    }
    drop(s);

    // Half a frame then silence: the per-connection read timeout (500ms
    // here) reclaims the session thread; the server keeps serving.
    let mut s = TcpStream::connect(&addr).expect("connect");
    let wire = frame_bytes(dcp_serve::wire::kind::QUERY, b"sets");
    s.write_all(&wire[..5]).expect("half frame");
    std::thread::sleep(Duration::from_millis(700));

    // An oversized length prefix is refused with a typed error.
    let mut s2 = TcpStream::connect(&addr).expect("connect");
    s2.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut huge = Vec::new();
    huge.extend_from_slice(b"DCPS");
    huge.push(dcp_serve::wire::kind::QUERY);
    huge.extend_from_slice(&u32::MAX.to_be_bytes());
    s2.write_all(&huge).expect("huge header");
    if let Ok(Some((k, body))) = read_frame(&mut s2, MAX_FRAME) {
        match parse_response(k, body).expect("parseable") {
            Response::Err(code, _) => {
                assert_eq!(code, ServeError::FrameTooLarge { len: 0, max: 0 }.code())
            }
            ok => panic!("oversized frame must not succeed: {ok:?}"),
        }
    }
    drop(s2);
    drop(s);

    // The daemon is still healthy after all of the above.
    let mut c = Client::connect(&addr).expect("connect");
    assert_eq!(c.ping().expect("ping"), "pong");
    drop(c);
    shutdown(&addr, handle);
}

#[test]
fn live_server_rejects_mutated_ingests_without_dying() {
    let (addr, handle) = spawn_server();
    let bundle = encode_bundle(&sample_bundle());
    let mut g = SmallRng::seed_from_u64(0xbad_1d3a);
    for _ in 0..64 {
        let mut mutated = bundle.as_slice().to_vec();
        // Flip a byte beyond the magic so the mutation lands in the
        // payload, not the DCPB header check alone.
        let pos = g.gen_range(0usize..mutated.len());
        mutated[pos] ^= 1 << g.gen_range(0u32..8);
        let mut buf = BytesMut::with_capacity(mutated.len());
        buf.put_slice(&mutated);
        let mut c = Client::connect(&addr).expect("connect");
        // Either a typed rejection or (rarely) a benign parse — never a
        // dead server.
        let _ = c.ingest("fuzz", None, buf.freeze());
    }
    let mut c = Client::connect(&addr).expect("connect");
    assert_eq!(c.ping().expect("ping"), "pong");
    let stats = c.stats().expect("stats");
    assert!(stats.contains("SERVE STATS"), "{stats}");
    drop(c);
    shutdown(&addr, handle);
}

#[test]
fn wal_file_grind_recovers_a_valid_prefix_and_never_panics() {
    // The durable-store mirror of the frame grind above: every
    // truncation of the write-ahead log and a bit flip at every byte
    // must recover exactly the records in front of the damage — typed
    // errors only, never a panic, never a record past the damage.
    use dcp_core::stored::decode_bundle;
    use dcp_serve::{Durability, ProfileStore, StoreConfig};

    let dir = std::env::temp_dir().join(format!("dcp-robust-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let raw_bundle = encode_bundle(&sample_bundle());
    let wire = raw_bundle.len() as u64;
    let mut store = ProfileStore::new(StoreConfig::default());
    let (mut dur, _) = Durability::open(&dir, 0, &mut store).expect("open");
    for seq in 0..3u64 {
        let t = store.prepare_ingest("w", Some(seq), wire).expect("prepare");
        dur.log_ingest("w", t, wire, &raw_bundle).expect("log");
        store.apply_ingest("w", t, wire, decode_bundle(raw_bundle.clone()).expect("bundle"));
    }
    drop(dur);
    let wal_path = dir.join("ingest.wal");
    let full = std::fs::read(&wal_path).expect("read");

    // Record boundaries: header is 5 bytes, each record is a u32 body
    // length + u64 checksum + body.
    let mut bounds = vec![5usize];
    let mut at = 5usize;
    while at < full.len() {
        let body = u32::from_be_bytes(full[at..at + 4].try_into().expect("4")) as usize;
        at += 12 + body;
        bounds.push(at);
    }
    assert_eq!(bounds.len(), 4, "three records");
    // Records in front of byte `pos`: the last boundary at or before it.
    let prefix_records = |pos: usize| bounds.iter().filter(|&&b| b <= pos).count() as u64 - 1;

    let recover = |mutated: &[u8]| -> Result<(u64, Option<ServeError>), ServeError> {
        std::fs::write(&wal_path, mutated).expect("write");
        let mut st = ProfileStore::new(StoreConfig::default());
        let (_d, report) = Durability::open(&dir, 0, &mut st)?;
        Ok((report.replayed, report.tail_error))
    };

    // Zero-length file: a clean empty log.
    let (replayed, tail) = recover(b"").expect("empty recovers");
    assert_eq!(replayed, 0);
    assert!(tail.is_none());

    // Every truncation: exactly the complete records survive; a cut
    // inside a record is reported as typed tail damage.
    for cut in 0..full.len() {
        let (replayed, tail) = recover(&full[..cut]).expect("truncation recovers");
        if cut < 5 {
            assert_eq!(replayed, 0, "cut {cut}");
            continue;
        }
        assert_eq!(replayed, prefix_records(cut), "cut {cut}");
        if bounds.contains(&cut) {
            assert!(tail.is_none(), "cut {cut} is a record boundary");
        } else {
            assert!(
                matches!(tail, Some(ServeError::WalCorrupt { .. })),
                "cut {cut} must be typed tail damage"
            );
        }
    }

    // Every byte, one bit flip: header damage is refused outright
    // (that file is no longer ours); record damage recovers the
    // records in front of it and reports the rest as a damaged tail.
    for pos in 0..full.len() {
        let mut mutated = full.clone();
        mutated[pos] ^= 0x04;
        match recover(&mutated) {
            Err(ServeError::WalCorrupt { offset: 0, .. }) => {
                assert!(pos < 5, "only header flips are refused, flip at {pos}")
            }
            Err(e) => panic!("flip at {pos}: unexpected error {e}"),
            Ok((replayed, tail)) => {
                assert!(pos >= 5, "header flip at {pos} must be refused");
                assert_eq!(replayed, prefix_records(pos), "flip at {pos}");
                assert!(tail.is_some(), "flip at {pos} must report the damaged tail");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_times_out_on_a_silent_server() {
    // A listener that accepts and never replies: the client's read
    // timeout turns the stall into a typed Io error instead of a hang.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let keep = std::thread::spawn(move || {
        let (_s, _) = listener.accept().expect("accept");
        std::thread::sleep(Duration::from_secs(2));
    });
    let mut c =
        Client::connect_with_timeout(&addr, Duration::from_millis(200)).expect("connect");
    match c.ping() {
        Err(ServeError::Io(_)) => {}
        other => panic!("expected Io timeout, got {other:?}"),
    }
    keep.join().expect("join");
}

/// A scripted shard: accepts one connection, answers each request
/// frame with the next raw byte string from the script (not necessarily
/// a valid frame), then CLOSES. The immediate close matters: a mutated
/// script can leave the router mid-read (a truncated or length-extended
/// frame), and the EOF is what unblocks it right away instead of its
/// read timeout. The short read timeout here bounds the converse case —
/// the router waiting on a frame the fake never finished while the fake
/// waits for a request the router will never send.
fn fake_shard(script: Vec<Vec<u8>>) -> (String, std::thread::JoinHandle<()>) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake shard");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        let Ok((mut s, _)) = listener.accept() else { return };
        let _ = s.set_read_timeout(Some(Duration::from_millis(300)));
        for resp in script {
            match read_frame(&mut s, MAX_FRAME) {
                Ok(Some(_)) => {
                    if s.write_all(&resp).is_err() {
                        return;
                    }
                }
                _ => return,
            }
        }
    });
    (addr, handle)
}

/// Run one query against a router fronting a scripted shard; returns
/// the client-visible result after tearing the router down.
fn routed_query_against(script: Vec<Vec<u8>>, q: &str) -> Result<String, ServeError> {
    let (shard_addr, shard_handle) = fake_shard(script);
    let router = Router::bind(RouterConfig {
        shards: vec![vec![shard_addr]],
        sessions: 1,
        read_timeout: Duration::from_secs(5),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let addr = router.local_addr().expect("addr");
    let rhandle = std::thread::spawn(move || router.serve().expect("route"));
    let mut cl = Client::connect(&addr).expect("connect");
    let result = cl.query(q);
    cl.shutdown().expect("shutdown");
    drop(cl);
    rhandle.join().expect("router join");
    shard_handle.join().expect("fake shard join");
    result
}

#[test]
fn routed_frames_ground_end_to_end_never_yield_wrong_but_ok() {
    // The router↔shard conversation for one view query is two frames
    // back: an OK epoch and a DATA partial. Grind that script — every
    // truncation, a bit flip at every byte, random bytes — through a
    // LIVE router: the client must see either the exact golden response
    // or a typed error. A mutated exchange that silently changes the
    // response bytes would break the distributed determinism contract;
    // the partial checksum is what rules it out.
    use dcp_serve::{handle_query, ProfileStore, StoreConfig};

    let mut store = ProfileStore::new(StoreConfig::default());
    let raw = encode_bundle(&sample_bundle());
    let decoded = dcp_core::stored::decode_bundle(raw.clone()).expect("bundle");
    store.ingest("s", Some(0), raw.len() as u64, decoded).expect("ingest");
    let golden = handle_query(&mut store, "export s heap").expect("golden");
    let epoch_frame = frame_bytes(dcp_serve::wire::kind::OK, b"1");
    let partial_frame =
        frame_bytes(dcp_serve::wire::kind::DATA, store.partial("s").expect("partial").as_slice());

    // Sanity: the unmutated script serves the golden bytes.
    let ok = routed_query_against(vec![epoch_frame.clone(), partial_frame.clone()], "export s heap")
        .expect("clean script must serve");
    assert_eq!(ok, golden);

    let check = |script: Vec<Vec<u8>>, what: String| {
        match routed_query_against(script, "export s heap") {
            Ok(text) => assert_eq!(text, golden, "{what}: wrong-but-OK response"),
            Err(_) => {} // typed by construction; reaching here is the claim
        }
    };

    // Every truncation of either response frame.
    for cut in 0..epoch_frame.len() {
        check(vec![epoch_frame[..cut].to_vec()], format!("epoch frame cut at {cut}"));
    }
    for cut in 0..partial_frame.len() {
        check(
            vec![epoch_frame.clone(), partial_frame[..cut].to_vec()],
            format!("partial frame cut at {cut}"),
        );
    }
    // A single-bit flip at every byte of the exchange (one bit per
    // position live; the payload-level grinds cover all eight).
    for pos in 0..epoch_frame.len() {
        let mut mutated = epoch_frame.clone();
        mutated[pos] ^= 1 << (pos % 8);
        check(vec![mutated, partial_frame.clone()], format!("epoch frame flip at {pos}"));
    }
    for pos in 0..partial_frame.len() {
        let mut mutated = partial_frame.clone();
        mutated[pos] ^= 1 << (pos % 8);
        check(vec![epoch_frame.clone(), mutated], format!("partial frame flip at {pos}"));
    }
}

#[test]
fn router_survives_random_byte_shards() {
    // Pure fuzz on the routed path: shards that answer with random
    // bytes must produce typed errors, never a hang, never an OK.
    let mut g = SmallRng::seed_from_u64(0x70_0735);
    for case in 0..24 {
        let len = g.gen_range(1usize..96);
        let mut raw = Vec::with_capacity(len + 4);
        if case % 2 == 0 {
            raw.extend_from_slice(b"DCPS");
        }
        for _ in 0..len {
            raw.push((g.next_u64() & 0xff) as u8);
        }
        let result = routed_query_against(vec![raw], "ranking s samples");
        assert!(result.is_err(), "case {case}: garbage shard must not produce an OK response");
    }
}

#[test]
fn corrupt_partial_payloads_reconstruct_typed_never_panic() {
    // Arbitrary counters and garbage state behind a VALID checksum:
    // decode succeeds (the frame is authentic), reconstruct must still
    // fail typed — the state bundle is re-validated end to end.
    use dcp_serve::{decode_set_partial, encode_set_partial, SetPartial};
    let mut g = SmallRng::seed_from_u64(0x9a97_1a1);
    for _ in 0..256 {
        let len = g.gen_range(0usize..64);
        let mut state = Vec::with_capacity(len);
        for _ in 0..len {
            state.push((g.next_u64() & 0xff) as u8);
        }
        let mut buf = BytesMut::with_capacity(len);
        buf.put_slice(&state);
        let p = SetPartial {
            epoch: g.next_u64(),
            bundles: g.next_u64(),
            blob_bytes: g.next_u64(),
            state: buf.freeze(),
        };
        let wire = encode_set_partial(&p);
        let decoded = decode_set_partial(wire).expect("authentic payload decodes");
        assert_eq!(decoded, p);
        // Random state bytes are not a valid DCPB bundle: typed error.
        assert!(decoded.reconstruct().is_err());
    }
}

/// Drive a 2-deep windowed ingest (two pushes, then drain) against a
/// scripted fake server and report exactly what the client saw: inner
/// per-ack results in order, or the outer error that ended the window.
fn windowed_push_against(
    script: Vec<Vec<u8>>,
) -> Result<Vec<Result<dcp_serve::Ack, ServeError>>, ServeError> {
    let (addr, handle) = fake_shard(script);
    let mut cl =
        Client::connect_with_timeout(&addr, Duration::from_millis(400)).expect("connect fake");
    let bundle = encode_bundle(&sample_bundle());
    let mut pipe = cl.pipeline(2);
    let mut acks = Vec::new();
    let mut outer = None;
    for seq in 0..2u64 {
        match pipe.push("s", Some(seq), bundle.clone()) {
            Ok(Some(a)) => acks.push(a),
            Ok(None) => {}
            Err(e) => {
                outer = Some(e);
                break;
            }
        }
    }
    let result = match outer {
        Some(e) => Err(e),
        None => match pipe.drain() {
            Ok(rest) => {
                acks.extend(rest);
                Ok(acks)
            }
            Err(e) => Err(e),
        },
    };
    drop(cl);
    handle.join().expect("fake server join");
    result
}

#[test]
fn windowed_ingest_ack_grind_never_pairs_a_wrong_ack() {
    // The ack stream is the only thing pairing a pipelined push with
    // its outcome, so grind it: swapped, duplicated, out-of-window,
    // malformed, and binary acks must each surface as the typed
    // AckMismatch; ERR frames relay as inner typed refusals with the
    // window still moving; truncations and bit flips end in a typed
    // error or an ack that still names the expected (set, seq) — never
    // a silently mispaired accept.
    let ack_frame = |seq: u64| {
        frame_bytes(
            dcp_serve::wire::kind::OK,
            format!("ingested set=s seq={seq} epoch={}", seq + 1).as_bytes(),
        )
    };
    let mismatch = |what: &str, r: Result<Vec<Result<dcp_serve::Ack, ServeError>>, ServeError>| {
        match r {
            Err(ServeError::AckMismatch(_)) => {}
            other => panic!("{what}: expected AckMismatch, got {other:?}"),
        }
    };

    // Golden: in-order acks pair cleanly.
    let acks = windowed_push_against(vec![ack_frame(0), ack_frame(1)]).expect("clean ack stream");
    let acks: Vec<dcp_serve::Ack> = acks.into_iter().map(|a| a.expect("clean ack")).collect();
    assert_eq!(acks.len(), 2);
    for (i, a) in acks.iter().enumerate() {
        assert_eq!((a.set.as_str(), a.seq, a.epoch), ("s", i as u64, i as u64 + 1));
    }

    // Pairing violations, each one fatal and typed.
    mismatch("swapped acks", windowed_push_against(vec![ack_frame(1), ack_frame(0)]));
    mismatch("duplicate ack", windowed_push_against(vec![ack_frame(0), ack_frame(0)]));
    mismatch("out-of-window seq", windowed_push_against(vec![ack_frame(7), ack_frame(1)]));
    mismatch(
        "ack for a foreign set",
        windowed_push_against(vec![
            frame_bytes(dcp_serve::wire::kind::OK, b"ingested set=other seq=0 epoch=1"),
            ack_frame(1),
        ]),
    );
    mismatch(
        "malformed ack text",
        windowed_push_against(vec![
            frame_bytes(dcp_serve::wire::kind::OK, b"welcome to the jungle"),
            ack_frame(1),
        ]),
    );
    mismatch(
        "binary frame as ack",
        windowed_push_against(vec![
            frame_bytes(dcp_serve::wire::kind::DATA, b"\x01\x02\x03"),
            ack_frame(1),
        ]),
    );

    // A server-side refusal is an inner typed relay; the next ack still
    // pairs and the window keeps moving.
    let (k, body) = encode_response(&Response::Err(8, "unknown profile set 's'".into()));
    let err_frame = frame_bytes(k, &body);
    let got = windowed_push_against(vec![err_frame, ack_frame(1)]).expect("window survives ERR");
    assert_eq!(got.len(), 2);
    assert_eq!(got[0].as_ref().expect_err("refusal relays typed").code(), 8);
    assert_eq!(got[1].as_ref().expect("second ack pairs").seq, 1);

    // Every truncation of the first ack frame: the stream ends in a
    // typed outer error (EOF mid-frame or mid-stream), never an ack.
    let first = ack_frame(0);
    for cut in 0..first.len() {
        match windowed_push_against(vec![first[..cut].to_vec()]) {
            Err(_) => {}
            Ok(acks) => panic!("ack frame cut at {cut}: unexpected acks {acks:?}"),
        }
    }

    // A single-bit flip at every byte (one bit per position live, as in
    // the routed grind): any surviving ack must still name the pushed
    // (set, seq) — the epoch is the server's claim, not a pairing field.
    for pos in 0..first.len() {
        let mut mutated = first.clone();
        mutated[pos] ^= 1 << (pos % 8);
        match windowed_push_against(vec![mutated, ack_frame(1)]) {
            Err(_) => {}
            Ok(acks) => {
                for (i, a) in acks.iter().enumerate() {
                    if let Ok(a) = a {
                        assert_eq!(
                            (a.set.as_str(), a.seq),
                            ("s", i as u64),
                            "flip at {pos}: a mispaired ack survived"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn oversized_client_frame_is_bounded() {
    // A max_frame smaller than the bundle: the reader refuses before
    // allocating, client-side, symmetric with the server check.
    let bundle = encode_bundle(&sample_bundle());
    let (k, body) = encode_request(&Request::Ingest { set: "s".into(), seq: None, bundle });
    let wire = frame_bytes(k, &body);
    let mut cur = Cursor::new(wire);
    match read_frame(&mut cur, 16) {
        Err(ServeError::FrameTooLarge { max: 16, .. }) => {}
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}
