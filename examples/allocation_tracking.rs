//! Allocation-tracking overhead control (§4.1.3) on an allocation-heavy
//! program, plus the bottom-up allocation-site view.
//!
//! ```sh
//! cargo run --release --example allocation_tracking
//! ```

use dcp_core::datacentric::TrackingPolicy;
use dcp_core::prelude::*;
use dcp_machine::PmuConfig;
use dcp_workloads::amg2006::{build, world, AmgConfig, AmgVariant};

fn main() {
    // AMG's setup phase allocates small blocks at high frequency through
    // a deep call chain — the worst case for context capture.
    let mut cfg = AmgConfig::small(AmgVariant::Original);
    cfg.setup_allocs = 4000;
    cfg.solve_iters = 1;
    let program = build(&cfg);
    let base_world = world(&cfg);

    println!("== overhead under different tracking strategies ==");
    for (name, tracking) in [
        ("naive (track everything)", TrackingPolicy::naive()),
        ("paper's strategies (4K threshold + fast ctx + trampoline)", TrackingPolicy::default()),
    ] {
        let mut w = base_world.clone();
        w.sim.pmu = Some(PmuConfig::Ibs { period: 256, skid: 2 });
        let pcfg = ProfilerConfig { tracking, ..ProfilerConfig::default() };
        let o = measure_overhead(&program, &w, pcfg);
        println!(
            "{name}\n    overhead {:.1}%  ({} -> {} cycles), tracked {}/{} allocations",
            o.overhead_pct,
            o.baseline_wall,
            o.profiled_wall,
            o.run.stats.allocs_tracked,
            o.run.stats.allocs_seen,
        );
    }
    println!();

    // The bottom-up view groups costs by allocation call site even when
    // the same wrapper is called from many places.
    let mut w = base_world.clone();
    w.sim.pmu = Some(PmuConfig::Ibs { period: 128, skid: 2 });
    let run = run_profiled(&program, &w, ProfilerConfig::default());
    let analysis = run.analyze(&program);
    println!("== bottom-up view: which allocation sites cost the most? ==");
    println!("{}", bottom_up(&analysis, Metric::Latency));
}
