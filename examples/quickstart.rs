//! Quickstart: write a small parallel program, profile it, read the
//! data-centric views.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The program is the classic NUMA pathology in miniature: the master
//! thread `calloc`s two arrays (first-touching every page onto its own
//! NUMA domain), then a parallel region reads them from every domain.
//! The profiler attributes the remote-access storm to the variables.

use dcp_core::prelude::*;
use dcp_machine::{MachineConfig, MarkedEvent, PmuConfig};
use dcp_runtime::ir::ex::*;
use dcp_runtime::{ProgramBuilder, SimConfig, WorldConfig};

fn main() {
    // ---- 1. Write the program against the builder DSL. ----
    let mut b = ProgramBuilder::new("quickstart");
    let n: i64 = 1 << 15;

    let kernel = b.outlined("compute_kernel", 3, |p| {
        let (hot, cold, len) = (p.param(0), p.param(1), p.param(2));
        p.line(20);
        p.omp_for(c(0), l(len), |p, i| {
            p.line(21);
            p.load(l(hot), mul(l(i), c(16)), 8); // line stride: misses
            p.line(22);
            p.load(l(cold), rem(l(i), c(64)), 8); // 512 B: cache-resident
            p.compute(8);
        });
    });

    let main_proc = b.proc("main", 0, |p| {
        p.line(10);
        let hot = p.calloc(c(128 * n), "hot_matrix"); // one line per element
        p.line(11);
        let cold = p.calloc(c(8 * n), "config_table");
        p.parallel(kernel, vec![l(hot), l(cold), c(n)]);
        p.free(l(hot));
        p.free(l(cold));
    });
    let program = b.build(main_proc);

    // ---- 2. Configure the machine and the PMU, then run profiled. ----
    let mut sim = SimConfig::new(MachineConfig::power7_node());
    sim.omp_threads = 32;
    sim.pmu = Some(PmuConfig::Marked {
        event: MarkedEvent::DataFromRmem, // remote-memory samples
        threshold: 8,
        skid: 2,
    });
    let world = WorldConfig::single_node(sim, 1);
    let run = run_profiled(&program, &world, ProfilerConfig::default());

    println!("wall time: {} cycles", run.wall);
    println!("samples:   {}", run.stats.samples);
    println!("profile:   {} bytes (trace equivalent: {} bytes)", run.profile_bytes, run.trace_bytes);
    println!();

    // ---- 3. Analyze and render the views. ----
    let analysis = run.analyze(&program);
    println!("{}", ranking(&analysis, Metric::Remote, 8));
    println!(
        "{}",
        top_down(&analysis, StorageClass::Heap, Metric::Remote, TopDownOpts::default())
    );
    println!("{}", bottom_up(&analysis, Metric::Remote));

    let vars = analysis.variables(Metric::Remote);
    println!(
        "=> '{}' is the variable to fix (its pages all live on the master's NUMA domain).",
        vars[0].name
    );
}
