//! Spatial-locality analysis with IBS-style latency sampling, after the
//! paper's §5.2 (Sweep3D): a column-major array traversed along the
//! wrong dimension thrashes the TLB and defeats the prefetcher; the
//! data-centric profile names the array, and transposing it fixes the
//! program.
//!
//! ```sh
//! cargo run --release --example stride_analysis
//! ```

use dcp_core::prelude::*;
use dcp_machine::PmuConfig;
use dcp_runtime::{run_world, NullObserver};
use dcp_workloads::sweep3d::{build, world, SweepConfig, SweepVariant};

fn main() {
    let cfg = SweepConfig::small(SweepVariant::Original);
    let program = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu = Some(PmuConfig::Ibs { period: 96, skid: 2 });
    let run = run_profiled(&program, &w, ProfilerConfig::default());
    let analysis = run.analyze(&program);

    println!("== latency attribution (IBS) ==");
    println!("{}", ranking(&analysis, Metric::Latency, 6));

    // TLB misses per variable expose the page-crossing stride.
    println!("TLB-miss samples per variable (long strides cross a page per access):");
    for v in analysis.variables(Metric::TlbMiss).iter().take(3) {
        println!(
            "  {:<6} tlb-miss samples {:>7}  of {:>7} samples",
            v.name,
            v.metrics[Metric::TlbMiss.col()],
            v.metrics[Metric::Samples.col()]
        );
    }
    println!();
    println!(
        "{}",
        top_down(
            &analysis,
            StorageClass::Heap,
            Metric::Latency,
            TopDownOpts { max_depth: 8, min_pct: 5.0, max_children: 3 }
        )
    );

    println!("== fix: transpose the arrays so the inner loop is unit stride ==");
    let orig = run_world(&program, &world(&cfg), |_| NullObserver).unwrap().wall;
    let tcfg = SweepConfig::small(SweepVariant::Transposed);
    let tprog = build(&tcfg);
    let fixed = run_world(&tprog, &world(&tcfg), |_| NullObserver).unwrap().wall;
    println!("original:   {orig} cycles");
    println!("transposed: {fixed} cycles");
    println!(
        "speedup:    {:.1}%   (the paper's Sweep3D transposition gained 15%)",
        100.0 * (orig as f64 - fixed as f64) / orig as f64
    );
}
