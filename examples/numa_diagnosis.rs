//! The full diagnose-and-fix workflow of the paper's §5.4
//! (Streamcluster): measure, read the data-centric view, apply the
//! indicated fix, and verify the speedup.
//!
//! ```sh
//! cargo run --release --example numa_diagnosis
//! ```

use dcp_core::prelude::*;
use dcp_machine::{MarkedEvent, PmuConfig};
use dcp_runtime::{run_world, NullObserver};
use dcp_workloads::streamcluster::{build, world, ScConfig, ScVariant};

fn main() {
    // ---- 1. Profile the original program with NUMA-event sampling. ----
    let cfg = ScConfig::small(ScVariant::Original);
    let program = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu =
        Some(PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 8, skid: 2 });
    let run = run_profiled(&program, &w, ProfilerConfig::default());
    let analysis = run.analyze(&program);

    println!("== diagnosis ==");
    for (class, value, pct) in storage_breakdown(&analysis, Metric::Remote) {
        if value > 0 {
            println!("{:5.1}% of remote accesses on {}", pct, class.name());
        }
    }
    let vars = analysis.variables(Metric::Remote);
    let culprit = &vars[0];
    println!(
        "top variable: '{}' allocated at {} ({} blocks, {} bytes)",
        culprit.name, culprit.alloc_site, culprit.alloc_count, culprit.alloc_bytes
    );
    println!();
    println!(
        "{}",
        top_down(
            &analysis,
            StorageClass::Heap,
            Metric::Remote,
            TopDownOpts { max_depth: 8, min_pct: 3.0, max_children: 4 }
        )
    );
    println!(
        "=> '{}' is allocated AND initialized by the master thread; first-touch puts",
        culprit.name
    );
    println!("   every page on one NUMA domain and its memory controller saturates.");
    println!();
    // The advisor reaches the same conclusion automatically.
    let recs = advise(&analysis, Metric::Remote, &AdvisorConfig::default());
    println!("{}", render_advice(&recs));

    // ---- 2. Apply the paper's fix: parallel first-touch init. ----
    println!("== fix: initialize in parallel so first-touch distributes pages ==");
    let baseline = run_world(&program, &world(&cfg), |_| NullObserver).unwrap().wall;
    let fixed_cfg = ScConfig::small(ScVariant::ParallelFirstTouch);
    let fixed_prog = build(&fixed_cfg);
    let fixed = run_world(&fixed_prog, &world(&fixed_cfg), |_| NullObserver).unwrap().wall;
    println!("original: {baseline} cycles");
    println!("fixed:    {fixed} cycles");
    println!(
        "speedup:  {:.1}%   (the paper's Streamcluster fix gained 28%)",
        100.0 * (baseline as f64 - fixed as f64) / baseline as f64
    );
}
