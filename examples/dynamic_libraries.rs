//! Static-variable attribution across dynamically loaded libraries — a
//! capability the paper calls out as unique ("HPCToolkit not only tracks
//! static variables in the executable, but also static variables in
//! dynamically-loaded shared libraries", §4.1.3).
//!
//! ```sh
//! cargo run --release --example dynamic_libraries
//! ```

use dcp_core::prelude::*;
use dcp_machine::{MachineConfig, PmuConfig};
use dcp_runtime::ir::ex::*;
use dcp_runtime::{ProgramBuilder, SimConfig, WorldConfig};

fn main() {
    let mut b = ProgramBuilder::new("host_app");
    // A plugin library with its own static lookup table, loaded mid-run.
    let plugin = b.add_module("libphysics_plugin.so", false);
    let exe_table = b.static_array("exe_table", 1 << 16);
    let plugin_table = b.static_array_in(plugin, "plugin_lut", 1 << 18);

    let main_proc = b.proc("main", 0, |p| {
        // Phase 1: only the executable's static is live.
        p.for_(c(0), c(4096), |p, i| {
            p.line(10);
            p.load(c(exe_table as i64), rem(mul(l(i), c(37)), c(8192)), 8);
        });
        // Phase 2: dlopen the plugin, hammer its lookup table.
        p.line(20);
        p.dlopen(plugin);
        p.for_(c(0), c(16384), |p, i| {
            p.line(21);
            p.load(c(plugin_table as i64), rem(mul(l(i), c(53)), c(32768)), 8);
        });
        p.line(30);
        p.dlclose(plugin);
        // Phase 3: after dlclose the plugin's addresses are unmapped;
        // a stale pointer read shows up as *unknown* data, not as a
        // misattributed static.
        p.for_(c(0), c(1024), |p, i| {
            p.line(31);
            p.load(c(plugin_table as i64), l(i), 8);
        });
    });
    let program = b.build(main_proc);

    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.pmu = Some(PmuConfig::Ibs { period: 32, skid: 2 });
    let world = WorldConfig::single_node(sim, 1);
    let run = run_profiled(&program, &world, ProfilerConfig::default());
    let analysis = run.analyze(&program);

    println!("{}", ranking(&analysis, Metric::Samples, 8));
    println!(
        "static-class samples: {}   unknown-class samples: {}",
        analysis.class_total(StorageClass::Static, Metric::Samples),
        analysis.class_total(StorageClass::Unknown, Metric::Samples),
    );
    println!();
    println!("note: 'plugin_lut' gets fine-grained attribution while the library is");
    println!("loaded; the stale accesses after dlclose fall into unknown data.");
}
