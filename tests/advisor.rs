//! The advisor must reach the same conclusions the paper's authors
//! reached by hand in §5, given only the measurement data.

use dcp_core::prelude::*;
use dcp_machine::{MarkedEvent, PmuConfig};

#[test]
fn advisor_recommends_numa_fix_for_nw() {
    use dcp_workloads::nw::*;
    let cfg = NwConfig::small(NwVariant::Original);
    let prog = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu = Some(PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 8, skid: 2 });
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let analysis = run.analyze(&prog);
    let recs = advise(&analysis, Metric::Remote, &AdvisorConfig::default());
    assert!(!recs.is_empty());
    // Paper's §5.5 conclusion: distribute the allocation of referrence
    // and input_itemsets. Both were calloc'd by the master.
    let rec = recs.iter().find(|r| r.variable == "referrence").expect("referrence flagged");
    assert!(
        matches!(rec.action, Action::FixFirstTouch { .. } | Action::InterleaveAllocation),
        "{:?}",
        rec.action
    );
    assert!(recs.iter().any(|r| r.variable == "input_itemsets"));
    let text = render_advice(&recs);
    assert!(text.contains("referrence"), "{text}");
}

#[test]
fn advisor_recommends_transposition_for_sweep3d() {
    use dcp_workloads::sweep3d::*;
    let cfg = SweepConfig::small(SweepVariant::Original);
    let prog = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu = Some(PmuConfig::Ibs { period: 96, skid: 2 });
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let analysis = run.analyze(&prog);
    let recs = advise(&analysis, Metric::Latency, &AdvisorConfig::default());
    // Paper's §5.2 conclusion: transpose Flux (and Src): the advisor
    // must flag the stride problem, not a NUMA problem (pure MPI has
    // no remote traffic).
    let rec = recs.iter().find(|r| r.variable == "Flux").expect("Flux flagged");
    assert!(
        matches!(rec.action, Action::ImproveSpatialLocality { .. }),
        "expected spatial advice for Flux, got {:?}",
        rec.action
    );
}

#[test]
fn advisor_is_quiet_on_balanced_programs() {
    use dcp_runtime::ir::ex::*;
    use dcp_runtime::{ProgramBuilder, SimConfig, WorldConfig};
    // A unit-stride local scan: nothing to recommend beyond (at most)
    // temporal advice for the dominant array.
    let mut b = ProgramBuilder::new("calm");
    let main = b.proc("main", 0, |p| {
        let a = p.malloc(c(1 << 16), "seq");
        p.for_(c(0), c(40_000), |p, i| {
            p.line(5);
            p.load(l(a), rem(l(i), c(8192)), 8);
            p.compute(4);
        });
        p.free(l(a));
    });
    let prog = b.build(main);
    let mut sim = SimConfig::new(dcp_machine::MachineConfig::magny_cours());
    sim.pmu = Some(PmuConfig::Ibs { period: 64, skid: 1 });
    let w = WorldConfig::single_node(sim, 1);
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let analysis = run.analyze(&prog);
    let recs = advise(&analysis, Metric::Latency, &AdvisorConfig::default());
    for r in &recs {
        assert!(
            matches!(r.action, Action::ImproveTemporalLocality),
            "unexpected strong advice on a healthy program: {r:?}"
        );
    }
}
