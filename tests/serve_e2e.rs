//! End-to-end through the serving layer: profile real workloads, push
//! their bundles to an in-process daemon over loopback TCP, and assert
//! the served responses are byte-identical to what the in-process
//! analyzer prints — including the `diff` query against the output of
//! `memgaze nw --compare interleaved`.

use dcp_core::prelude::*;
use dcp_core::view::flat;
use dcp_core::{bundle_from_measurement, encode_bundle};
use dcp_machine::{MarkedEvent, PmuConfig};
use dcp_serve::{Client, Server, ServerConfig};
use dcp_workloads::nw::{build, world, NwConfig, NwVariant};

fn profiled(variant: NwVariant) -> (dcp_runtime::Program, dcp_core::ProfiledRun) {
    let cfg = NwConfig::small(variant);
    let prog = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu =
        Some(PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 8, skid: 2 });
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    (prog, run)
}

fn spawn_server() -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

/// Push every node's bundle in node order over one connection — the
/// same union order `ProfiledRun::analyze` uses.
fn push(client: &mut Client, set: &str, prog: &dcp_runtime::Program, run: &dcp_core::ProfiledRun) {
    for m in &run.measurements {
        let bundle = encode_bundle(&bundle_from_measurement(prog, m));
        client.ingest(set, None, bundle).expect("ingest");
    }
}

#[test]
fn served_views_and_diff_match_the_in_process_cli() {
    let (prog_b, run_b) = profiled(NwVariant::Original);
    let (prog_a, run_a) = profiled(NwVariant::Interleaved);

    let (addr, handle) = spawn_server();
    let mut client = Client::connect(&addr).expect("connect");
    push(&mut client, "nw", &prog_b, &run_b);
    push(&mut client, "nw-fix", &prog_a, &run_a);

    let before = run_b.analyze(&prog_b);
    let after = run_a.analyze(&prog_a);

    // Every view kind the CLI prints, byte-identical over the wire.
    let metric = Metric::Remote;
    let cases: Vec<(&str, String)> = vec![
        ("ranking nw remote 12", ranking(&before, metric, 12)),
        (
            "topdown nw heap remote",
            top_down(&before, StorageClass::Heap, metric, TopDownOpts::default()),
        ),
        ("bottomup nw remote", bottom_up(&before, metric)),
        ("flat nw heap remote 12", flat(&before, StorageClass::Heap, metric, 12)),
    ];
    for (query, expected) in cases {
        let served = client.query(query).expect(query);
        assert_eq!(served, expected, "served {query:?} differs from in-process view");
    }

    // The golden for the diff satellite: the served `diff` response
    // must begin with exactly the differential report that
    // `memgaze nw --compare interleaved` prints (analysis.compare).
    let golden = before.compare(&after, metric);
    let served = client.query("diff nw nw-fix remote").expect("diff");
    assert!(
        served.starts_with(&golden),
        "served diff must open with the --compare report.\nwant prefix:\n{golden}\ngot:\n{served}"
    );
    // Followed by the structural tree diff from dcp_cct::diff.
    assert!(served.contains("STRUCTURAL (heap tree):"), "{served}");

    // Second fetch is a cache hit and still byte-identical.
    let again = client.query("diff nw nw-fix remote").expect("diff again");
    assert_eq!(served, again);
    let stats = client.stats().expect("stats");
    assert!(stats.contains("cache_hits"), "{stats}");

    drop(client);
    Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn vars_query_reports_the_known_nw_offender() {
    // nw's NUMA problem is its two matrices (the paper's Rodinia
    // Needleman-Wunsch case); the served variable-centric view must
    // surface them by their allocation-site hints.
    let (prog, run) = profiled(NwVariant::Original);
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(&addr).expect("connect");
    push(&mut client, "nw", &prog, &run);
    let vars = client.query("vars nw remote").expect("vars");
    assert!(vars.contains("referrence"), "{vars}");
    assert!(vars.contains("input_itemsets"), "{vars}");
    drop(client);
    Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("join");
}
