//! Golden snapshot of the v2 wire format.
//!
//! Pins the exact byte stream the codec produces for one fixed-seed
//! AMG2006 profile, so an encoding change cannot silently alter the wire
//! format (the on-disk/wire compatibility contract): any intentional
//! format change must re-pin these constants — and bump the wire magic.
//! Mirrors the PMU sample-stream snapshots from the machine crate.
//!
//! The constants were re-pinned once for the epoch-sharded scheduler
//! (see DESIGN.md, "Parallel simulation of the simulator"): the wire
//! format is untouched — the decode/re-encode identity below still
//! holds — but the simulated run the bytes describe changed (address-
//! based interleave placement, corrected skid-sample delivery).

use std::hash::Hasher;

use dcp_core::prelude::*;
use dcp_machine::{MarkedEvent, PmuConfig};
use dcp_support::hash::FxHasher;
use dcp_workloads::amg2006::{self, AmgConfig, AmgVariant};

/// One deterministic profiled AMG run (the simulator is seeded; the
/// per-thread measurement order is sorted, so the encoded bytes are a
/// pure function of this configuration).
fn profiled() -> (dcp_runtime::Program, dcp_core::ProfiledRun) {
    let cfg = AmgConfig::small(AmgVariant::Original);
    let prog = amg2006::build(&cfg);
    let mut world = amg2006::world(&cfg);
    world.sim.pmu =
        Some(PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 16, skid: 2 });
    let run = run_profiled(&prog, &world, ProfilerConfig::default());
    (prog, run)
}

fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[test]
fn v2_byte_stream_is_pinned_for_fixed_seed_amg() {
    let (prog, run) = profiled();

    // Whole-run v2 and v1 sizes: any codec change shows up here first.
    assert_eq!(run.profile_bytes, 30240, "total v2 bytes changed — wire format drift");
    assert_eq!(run.profile_bytes_v1, 56654, "total v1 bytes changed — wire format drift");
    // The headline acceptance number, pinned on a real workload: v2 is
    // >= 40% smaller than v1.
    assert!(run.profile_bytes * 10 <= run.profile_bytes_v1 * 6);

    // One concrete blob, pinned exactly: the largest encoded profile of
    // the run (with its name section).
    let encoded = run.encode_measurements(&prog);
    let blob = encoded
        .iter()
        .flat_map(|m| m.profiles.iter())
        .flat_map(|c| c.iter())
        .max_by_key(|b| b.len())
        .expect("run produced profiles");
    assert_eq!(blob.len(), 293, "blob length changed — wire format drift");
    assert_eq!(
        fxhash(blob.as_slice()),
        0xd80ab3818e4a4131,
        "blob bytes changed — wire format drift"
    );
    let head: String =
        blob.as_slice().iter().take(24).map(|b| format!("{b:02x}")).collect();
    assert_eq!(head, "4443503200053501046d61696e01010b0009160a84808080");

    // The pinned stream still decodes to the measurement it came from.
    let (tree, names) = dcp_cct::decode_named(blob.clone()).expect("pinned blob decodes");
    assert_eq!(dcp_cct::encode_named(&tree, &names), *blob, "re-encode is the identity");
}

#[test]
fn golden_run_is_reproducible() {
    // The premise of the snapshot: two runs produce identical bytes.
    let (prog_a, run_a) = profiled();
    let (prog_b, run_b) = profiled();
    let a = run_a.encode_measurements(&prog_a);
    let b = run_b.encode_measurements(&prog_b);
    assert_eq!(a.len(), b.len());
    for (ma, mb) in a.iter().zip(&b) {
        for (ca, cb) in ma.profiles.iter().zip(&mb.profiles) {
            assert_eq!(ca, cb, "encoded profiles must be bit-reproducible");
        }
    }
}
