//! Property-based integration tests: randomized programs through the
//! whole stack must uphold the profiler's invariants.

use dcp_core::prelude::*;
use dcp_machine::{MachineConfig, MarkedEvent, PmuConfig};
use dcp_runtime::ir::ex::*;
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};
use dcp_support::prop::{any_bool, vec, Strategy, StrategyExt};
use dcp_support::props;

/// Shape of one randomized array + access pattern.
#[derive(Debug, Clone)]
struct ArraySpec {
    kind: u8,     // 0 = heap malloc, 1 = heap calloc, 2 = static, 3 = brk
    log_bytes: u8, // 12..=18
    stride: i64,  // elements
    accesses: i64,
}

fn arb_spec() -> impl Strategy<Value = ArraySpec> {
    (0u8..4, 12u8..=18, 1i64..200, 500i64..3000).prop_map(|(kind, log_bytes, stride, accesses)| {
        ArraySpec { kind, log_bytes, stride, accesses }
    })
}

static NAMES: [&str; 8] = ["v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"];

fn build_program(specs: &[ArraySpec], threads: bool) -> Program {
    let mut b = ProgramBuilder::new("prop");
    let mut statics = Vec::new();
    for (i, s) in specs.iter().enumerate() {
        if s.kind == 2 {
            statics.push((i, b.static_array(NAMES[i], 1u64 << s.log_bytes)));
        }
    }
    let region = if threads {
        Some(b.outlined("region", 2, |p| {
            let (buf, len) = (p.param(0), p.param(1));
            p.omp_for(c(0), l(len), |p, i| {
                p.line(40);
                p.load(l(buf), l(i), 8);
            });
        }))
    } else {
        None
    };
    let specs = specs.to_vec();
    let main = b.proc("main", 0, |p| {
        let mut handles = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            let bytes = 1i64 << s.log_bytes;
            let h = match s.kind {
                0 => p.malloc(c(bytes), NAMES[i]),
                1 => p.calloc(c(bytes), NAMES[i]),
                2 => {
                    let addr = statics.iter().find(|(j, _)| *j == i).unwrap().1;
                    p.def(c(addr as i64))
                }
                _ => p.brk_alloc(c(bytes)),
            };
            handles.push(h);
        }
        for (i, s) in specs.iter().enumerate() {
            let elems = (1i64 << s.log_bytes) / 8;
            p.line(20 + i as u32);
            p.for_(c(0), c(s.accesses), |p, j| {
                p.load(l(handles[i]), rem(mul(l(j), c(s.stride)), c(elems)), 8);
            });
        }
        if let Some(r) = region {
            p.parallel(r, vec![l(handles[0]), c(512)]);
        }
        for (i, s) in specs.iter().enumerate() {
            if s.kind <= 1 {
                p.free(l(handles[i]));
            }
        }
    });
    b.build(main)
}

props! {
    cases = 16;

    /// Random programs never break the pipeline, and every sample lands
    /// in exactly one storage class.
    fn pipeline_conserves_samples(specs in vec(arb_spec(), 1..5),
                                  threads in any_bool(),
                                  ibs in any_bool()) {
        let prog = build_program(&specs, threads);
        let mut sim = SimConfig::new(MachineConfig::magny_cours());
        sim.omp_threads = if threads { 6 } else { 1 };
        sim.pmu = Some(if ibs {
            PmuConfig::Ibs { period: 64, skid: 2 }
        } else {
            PmuConfig::Marked { event: MarkedEvent::DataFromMem, threshold: 8, skid: 1 }
        });
        let w = WorldConfig::single_node(sim, 1);
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        let total = run.stats.samples;
        let a = run.analyze(&prog);
        let by_class: u64 = StorageClass::ALL
            .iter()
            .map(|&cl| a.class_total(cl, Metric::Samples))
            .sum();
        assert_eq!(total, by_class);
        // Remote samples never exceed total samples, per class.
        for cl in StorageClass::ALL {
            assert!(a.class_total(cl, Metric::Remote) <= a.class_total(cl, Metric::Samples));
        }
    }

    /// Profiling never makes the program *faster*, and overhead stays
    /// bounded for sane sampling periods.
    fn overhead_is_nonnegative(specs in vec(arb_spec(), 1..4)) {
        let prog = build_program(&specs, false);
        let mut sim = SimConfig::new(MachineConfig::magny_cours());
        sim.pmu = Some(PmuConfig::Ibs { period: 256, skid: 2 });
        let w = WorldConfig::single_node(sim, 1);
        let o = measure_overhead(&prog, &w, ProfilerConfig::default());
        assert!(o.profiled_wall >= o.baseline_wall);
        assert!(o.overhead_pct < 300.0, "overhead {}%", o.overhead_pct);
    }

    /// Brk (unknown) data never shows up as a named variable; tracked
    /// heap variables resolve to their hints.
    fn naming_is_faithful(specs in vec(arb_spec(), 1..5)) {
        let prog = build_program(&specs, false);
        let mut sim = SimConfig::new(MachineConfig::magny_cours());
        sim.pmu = Some(PmuConfig::Ibs { period: 48, skid: 1 });
        let w = WorldConfig::single_node(sim, 1);
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        let a = run.analyze(&prog);
        for v in a.variables(Metric::Samples) {
            if v.metrics[Metric::Samples.col()] == 0 { continue; }
            assert!(
                NAMES.contains(&v.name.as_str()),
                "unexpected variable name {:?}", v.name
            );
        }
    }
}
