//! Fixed-seed golden snapshots of the simulator/measurement pipeline.
//!
//! These pins were captured before the hot-path throughput overhaul and
//! carried through it unchanged; they were re-pinned ONCE for the
//! epoch-sharded parallel scheduler, as DESIGN.md ("Parallel simulation
//! of the simulator") documents: epoch-batched prefetch commit and
//! deferred shared-resource pricing intentionally move prefetch
//! timeliness and contention latency, and interleave placement became a
//! pure function of the page address. From here on the pins are frozen
//! again — and they must be identical at every `DCP_THREADS` setting,
//! which `tests/thread_invariance.rs` enforces.
//! One workload per access class — sequential (prefetch-friendly),
//! strided (page-crossing, prefetch-defeating), and NUMA-contended
//! (cross-domain sharing plus DRAM queueing) — each pinning the full
//! `MachineStats`, the node wall clock, and a hash of the encoded v2
//! profile bytes.

use std::hash::Hasher;

use dcp_core::prelude::*;
use dcp_machine::{MachineConfig, PmuConfig};
use dcp_runtime::ir::ex::*;
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};
use dcp_support::FxHasher;

/// Everything the optimisation must not change, in one comparable value.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    /// accesses, loads, stores, total_latency, l1, l2, l3, remote_l3,
    /// local_dram, remote_dram, tlb_misses, pf_fills, pf_hidden, pf_late.
    stats: [u64; 14],
    wall: u64,
    samples: u64,
    profile_hash: u64,
}

fn snapshot(prog: &Program, omp_threads: u32) -> Golden {
    let mut sim = SimConfig::new(MachineConfig::tiny_test());
    sim.omp_threads = omp_threads;
    sim.pmu = Some(PmuConfig::Ibs { period: 64, skid: 2 });
    let world = WorldConfig::single_node(sim, 1);
    let run = run_profiled(prog, &world, ProfilerConfig::default());
    let s = &run.nodes[0].machine_stats;
    let stats = [
        s.accesses,
        s.loads,
        s.stores,
        s.total_latency,
        s.l1_hits,
        s.l2_hits,
        s.l3_hits,
        s.remote_l3_hits,
        s.local_dram,
        s.remote_dram,
        s.tlb_misses,
        s.prefetch_fills,
        s.prefetch_hidden,
        s.prefetch_late,
    ];
    let wall = run.wall;
    let samples = run.stats.samples;
    let mut h = FxHasher::default();
    for m in run.encode_measurements(prog) {
        for blobs in &m.profiles {
            for b in blobs {
                h.write(b.as_ref());
            }
        }
    }
    Golden { stats, wall, samples, profile_hash: h.finish() }
}

/// Unit-stride scan: init stores then repeated loads, prefetch-friendly.
fn sequential_program() -> Program {
    let mut b = ProgramBuilder::new("golden_seq");
    let n: i64 = 4096;
    let main = b.proc("main", 0, |p| {
        p.line(1);
        let a = p.malloc(c(n * 8), "A");
        p.for_(c(0), c(n), |p, i| {
            p.line(2);
            p.store(l(a), l(i), 8);
        });
        p.for_(c(0), c(3), |p, _| {
            p.for_(c(0), c(n), |p, i| {
                p.line(3);
                p.load(l(a), l(i), 8);
            });
        });
        p.free(l(a));
    });
    b.build(main)
}

/// Page-crossing stride: every access on a new page, defeats the
/// prefetcher and thrashes the TLB.
fn strided_program() -> Program {
    let mut b = ProgramBuilder::new("golden_strided");
    let pages: i64 = 512;
    let main = b.proc("main", 0, |p| {
        p.line(1);
        let a = p.malloc(c(pages * 4096), "S");
        p.for_(c(0), c(6), |p, _| {
            p.for_(c(0), c(pages), |p, i| {
                p.line(2);
                p.load(l(a), mul(l(i), c(512)), 8);
            });
        });
        p.free(l(a));
    });
    b.build(main)
}

/// Master first-touches one array, then a 4-thread team (spread over both
/// tiny_test domains) hammers it: remote DRAM, remote L3 after stores,
/// and controller queueing.
fn numa_contended_program() -> Program {
    let mut b = ProgramBuilder::new("golden_numa");
    let n: i64 = 4096;
    let region = b.outlined("workers", 2, |p| {
        let (buf, len) = (p.param(0), p.param(1));
        p.line(10);
        p.omp_for(c(0), l(len), |p, i| {
            p.load(l(buf), l(i), 8);
            p.store(l(buf), l(i), 8);
        });
    });
    let main = b.proc("main", 0, |p| {
        p.line(1);
        let a = p.calloc(c(n * 8), "shared");
        p.parallel_n(region, vec![l(a), c(n)], c(4));
        p.free(l(a));
    });
    b.build(main)
}

/// Same snapshot, but with a network model attached to the (still
/// single-node) world. One node means no cross-node traffic, so the
/// fabric must be inert: every golden byte identical to the netless pin.
fn snapshot_with_fabric(prog: &Program, omp_threads: u32) -> Golden {
    let mut sim = SimConfig::new(MachineConfig::tiny_test());
    sim.omp_threads = omp_threads;
    sim.pmu = Some(PmuConfig::Ibs { period: 64, skid: 2 });
    let mut world = WorldConfig::single_node(sim, 1);
    world.net = Some(dcp_runtime::net::NetConfig::lossless(
        dcp_runtime::net::TopologySpec::OneBigSwitch,
    ));
    let run = run_profiled(prog, &world, ProfilerConfig::default());
    assert!(run.net.is_none(), "a single-node world must not instantiate the fabric");
    let s = &run.nodes[0].machine_stats;
    let stats = [
        s.accesses,
        s.loads,
        s.stores,
        s.total_latency,
        s.l1_hits,
        s.l2_hits,
        s.l3_hits,
        s.remote_l3_hits,
        s.local_dram,
        s.remote_dram,
        s.tlb_misses,
        s.prefetch_fills,
        s.prefetch_hidden,
        s.prefetch_late,
    ];
    let mut h = FxHasher::default();
    for m in run.encode_measurements(prog) {
        for blobs in &m.profiles {
            for b in blobs {
                h.write(b.as_ref());
            }
        }
    }
    Golden { stats, wall: run.wall, samples: run.stats.samples, profile_hash: h.finish() }
}

#[test]
fn golden_sequential() {
    assert_eq!(
        snapshot(&sequential_program(), 1),
        Golden {
            stats: GOLDEN_SEQ.0,
            wall: GOLDEN_SEQ.1,
            samples: GOLDEN_SEQ.2,
            profile_hash: GOLDEN_SEQ.3,
        }
    );
}

#[test]
fn golden_strided() {
    assert_eq!(
        snapshot(&strided_program(), 1),
        Golden {
            stats: GOLDEN_STRIDED.0,
            wall: GOLDEN_STRIDED.1,
            samples: GOLDEN_STRIDED.2,
            profile_hash: GOLDEN_STRIDED.3,
        }
    );
}

#[test]
fn golden_numa_contended() {
    assert_eq!(
        snapshot(&numa_contended_program(), 4),
        Golden {
            stats: GOLDEN_NUMA.0,
            wall: GOLDEN_NUMA.1,
            samples: GOLDEN_NUMA.2,
            profile_hash: GOLDEN_NUMA.3,
        }
    );
}

/// An attached-but-unused network leaves every pin untouched: the world
/// runner only builds a fabric for worlds spanning several nodes, so the
/// single-node goldens are byte-identical with `net: Some(..)`.
#[test]
fn golden_unchanged_with_inert_fabric() {
    assert_eq!(snapshot(&sequential_program(), 1), snapshot_with_fabric(&sequential_program(), 1));
    assert_eq!(snapshot(&strided_program(), 1), snapshot_with_fabric(&strided_program(), 1));
    assert_eq!(
        snapshot(&numa_contended_program(), 4),
        snapshot_with_fabric(&numa_contended_program(), 4)
    );
}

// Captured on the epoch-sharded scheduler. The strided pin is unchanged
// from the pre-epoch implementation (no prefetch, no sharing — the two
// models coincide); sequential moved because prefetch fills now commit
// at epoch boundaries (hidden/late reclassification), and NUMA moved
// because shared-resource latency is priced at ordered commit.
const GOLDEN_SEQ: ([u64; 14], u64, u64, u64) = (
    [16384, 12288, 4096, 123616, 14336, 0, 0, 0, 1587, 0, 8, 2048, 461, 1583],
    539057,
    499,
    15696257345543259998,
);
const GOLDEN_STRIDED: ([u64; 14], u64, u64, u64) = (
    [3072, 3072, 0, 706560, 0, 0, 0, 0, 3072, 0, 3072, 0, 0, 0],
    443039,
    93,
    14271958869652281144,
);
const GOLDEN_NUMA: ([u64; 14], u64, u64, u64) = (
    [8704, 4096, 4608, 87483, 7680, 0, 17, 1, 678, 177, 14, 1010, 151, 839],
    87347,
    193,
    12141671142982994037,
);
