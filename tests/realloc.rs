//! Integration tests for realloc: the paper wraps the whole malloc
//! family (malloc, calloc, realloc), and a moved block must re-attribute
//! cleanly — the old range freed, the new range owned by the realloc
//! site's calling context.

use dcp_core::prelude::*;
use dcp_machine::{MachineConfig, PmuConfig};
use dcp_runtime::ir::ex::*;
use dcp_runtime::{ProgramBuilder, SimConfig, WorldConfig};

#[test]
fn grown_block_reattributes_to_the_realloc_site() {
    let mut b = ProgramBuilder::new("re");
    let main = b.proc("main", 0, |p| {
        p.line(3);
        let small = p.malloc(c(1 << 14), "grow_me");
        // Touch the small block a bit.
        p.for_(c(0), c(2048), |p, i| {
            p.line(4);
            p.store(l(small), l(i), 8);
        });
        // Grow it 8x: moves, copies, re-registers.
        p.line(8);
        let big = p.realloc(l(small), c(1 << 17), "grow_me_big");
        p.for_(c(0), c(30_000), |p, i| {
            p.line(9);
            p.load(l(big), rem(mul(l(i), c(61)), c(1 << 14)), 8);
        });
        p.free(l(big));
    });
    let prog = b.build(main);
    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.pmu = Some(PmuConfig::Ibs { period: 32, skid: 1 });
    let w = WorldConfig::single_node(sim, 1);
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    // Wrapper accounting: malloc + realloc's implicit malloc = 2 allocs,
    // realloc's implicit free + the final free = 2 frees.
    assert_eq!(run.stats.allocs_seen, 2, "{:?}", run.stats);
    assert_eq!(run.stats.frees_seen, 2);
    let a = run.analyze(&prog);
    let vars = a.variables(Metric::Samples);
    let big = vars.iter().find(|v| v.name == "grow_me_big").expect("realloc'd var tracked");
    assert!(big.metrics[Metric::Samples.col()] > 100);
    assert!(big.alloc_site.contains("main:8"), "{}", big.alloc_site);
    // Nothing ends up unknown: the moved block is tracked at its new home.
    assert_eq!(a.class_total(StorageClass::Unknown, Metric::Samples), 0);
}

#[test]
fn same_class_realloc_keeps_the_address_and_owner() {
    let mut b = ProgramBuilder::new("re");
    let main = b.proc("main", 0, |p| {
        p.line(3);
        let buf = p.malloc(c(8192), "stable");
        p.for_(c(0), c(4096), |p, i| {
            p.line(4);
            p.load(l(buf), rem(mul(l(i), c(13)), c(1024)), 8);
        });
        // Shrink within the same page class: no move, no re-registration.
        p.line(6);
        let same = p.realloc(l(buf), c(8000), "stable2");
        p.for_(c(0), c(4096), |p, i| {
            p.line(7);
            p.load(l(same), rem(mul(l(i), c(13)), c(1000)), 8);
        });
        p.free(l(same));
    });
    let prog = b.build(main);
    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.pmu = Some(PmuConfig::Ibs { period: 32, skid: 1 });
    let w = WorldConfig::single_node(sim, 1);
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    // In-place realloc emits no wrapper events beyond the original pair.
    assert_eq!(run.stats.allocs_seen, 1);
    assert_eq!(run.stats.frees_seen, 1);
    let a = run.analyze(&prog);
    // All samples stay with the original owner.
    let vars = a.variables(Metric::Samples);
    assert_eq!(vars.len(), 1);
    assert_eq!(vars[0].name, "stable");
}

#[test]
fn realloc_copy_produces_real_traffic() {
    let bytes: i64 = 1 << 16;
    let mut b = ProgramBuilder::new("re");
    let main = b.proc("main", 0, |p| {
        let buf = p.malloc(c(bytes), "v");
        let grown = p.realloc(l(buf), c(4 * bytes), "v2");
        p.free(l(grown));
    });
    let prog = b.build(main);
    let sim = SimConfig::new(MachineConfig::magny_cours());
    let w = WorldConfig::single_node(sim, 1);
    let (_, nodes, _) = dcp_core::run_baseline(&prog, &w);
    // min(old,new) = 64 KiB copied line-by-line: 1024 loads + 1024 stores.
    let s = &nodes[0].machine_stats;
    assert_eq!(s.loads, 1024);
    assert_eq!(s.stores, 1024);
}
