//! End-to-end integration: program construction → profiled execution →
//! post-mortem analysis, checking that attribution lands where the
//! program's construction says it must.

use dcp_core::prelude::*;
use dcp_machine::{MachineConfig, MarkedEvent, PmuConfig};
use dcp_runtime::ir::ex::*;
use dcp_runtime::ir::Expr;
use dcp_runtime::{ProgramBuilder, SimConfig, WorldConfig};

fn numa_world(threads: u32, pmu: PmuConfig) -> WorldConfig {
    let mut sim = SimConfig::new(MachineConfig::power7_node());
    sim.omp_threads = threads;
    sim.pmu = Some(pmu);
    WorldConfig::single_node(sim, 1)
}

/// Master-calloc'd array read by all threads: attribution must name it,
/// place it in the heap class, and show the access inside the outlined
/// region.
#[test]
fn known_culprit_is_named() {
    let mut b = ProgramBuilder::new("e2e");
    let n: i64 = 1 << 14;
    let region = b.outlined("reader", 2, |p| {
        let (buf, len) = (p.param(0), p.param(1));
        p.line(50);
        p.omp_for(c(0), l(len), |p, i| {
            p.load(l(buf), mul(l(i), c(16)), 8);
        });
    });
    let main = b.proc("main", 0, |p| {
        p.line(7);
        let buf = p.calloc(c(128 * n), "culprit");
        p.parallel(region, vec![l(buf), c(n)]);
        p.free(l(buf));
    });
    let prog = b.build(main);
    let w = numa_world(
        32,
        PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 8, skid: 2 },
    );
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    assert!(run.stats.samples > 50, "need samples, got {}", run.stats.samples);
    let a = run.analyze(&prog);

    let vars = a.variables(Metric::Remote);
    assert_eq!(vars[0].name, "culprit");
    assert_eq!(vars[0].class, StorageClass::Heap);
    assert!(vars[0].alloc_site.contains("main:7"), "{}", vars[0].alloc_site);
    // The access context shows the outlined region.
    let view = top_down(&a, StorageClass::Heap, Metric::Remote, TopDownOpts::default());
    assert!(view.contains("reader$$OL$$"), "{view}");
}

/// Static, heap and unknown accesses split into their classes exactly.
#[test]
fn storage_classes_separate() {
    let mut b = ProgramBuilder::new("e2e");
    let table = b.static_array("lookup_table", 1 << 16);
    let main = b.proc("main", 0, |p| {
        let heap = p.malloc(c(1 << 16), "heap_arr");
        let anon = p.brk_alloc(c(1 << 16));
        p.for_(c(0), c(4096), |p, i| {
            let scat = rem(mul(l(i), c(61)), c(8192));
            p.line(10);
            p.load(c(table as i64), scat.clone(), 8);
            p.line(11);
            p.load(l(heap), scat.clone(), 8);
            p.line(12);
            p.load(l(anon), scat, 8);
        });
        p.free(l(heap));
    });
    let prog = b.build(main);
    let w = numa_world(1, PmuConfig::Ibs { period: 32, skid: 1 });
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let a = run.analyze(&prog);

    for class in [StorageClass::Static, StorageClass::Heap, StorageClass::Unknown] {
        assert!(
            a.class_total(class, Metric::Samples) > 20,
            "{} got {} samples",
            class.name(),
            a.class_total(class, Metric::Samples)
        );
    }
    // The three classes see statistically similar volumes (same loop).
    let s = a.class_total(StorageClass::Static, Metric::Samples) as f64;
    let h = a.class_total(StorageClass::Heap, Metric::Samples) as f64;
    let u = a.class_total(StorageClass::Unknown, Metric::Samples) as f64;
    for (x, y) in [(s, h), (h, u), (s, u)] {
        assert!(x / y < 2.0 && y / x < 2.0, "class volumes diverge: {s} {h} {u}");
    }
    // Variable names resolve.
    let vars = a.variables(Metric::Samples);
    assert!(vars.iter().any(|v| v.name == "lookup_table"));
    assert!(vars.iter().any(|v| v.name == "heap_arr"));
}

/// Sample conservation: every delivered sample lands in exactly one tree.
#[test]
fn samples_are_conserved() {
    let mut b = ProgramBuilder::new("e2e");
    let main = b.proc("main", 0, |p| {
        let buf = p.calloc(c(1 << 18), "a");
        p.for_(c(0), c(20_000), |p, i| {
            p.line(5);
            p.load(l(buf), rem(mul(l(i), c(97)), c(1 << 15)), 8);
            p.compute(3);
        });
        p.free(l(buf));
    });
    let prog = b.build(main);
    let w = numa_world(1, PmuConfig::Ibs { period: 64, skid: 2 });
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let total = run.stats.samples;
    let a = run.analyze(&prog);
    let by_class: u64 =
        StorageClass::ALL.iter().map(|&c| a.class_total(c, Metric::Samples)).sum();
    assert_eq!(total, by_class, "every sample must appear in exactly one class tree");
    assert!(total > 100);
}

/// Disabling skid correction visibly shifts attribution off the hot
/// statement (the §4.1.2 motivation).
#[test]
fn skid_correction_matters() {
    let build = || {
        let mut b = ProgramBuilder::new("e2e");
        let main = b.proc("main", 0, |p| {
            let buf = p.calloc(c(1 << 18), "a");
            p.for_(c(0), c(30_000), |p, i| {
                // One memory access surrounded by non-memory ops: with
                // skid, the signal lands on the compute that follows.
                p.line(5);
                p.load(l(buf), rem(mul(l(i), c(89)), c(1 << 15)), 8);
                p.compute(1);
                p.compute(1);
                p.compute(1);
            });
            p.free(l(buf));
        });
        b.build(main)
    };
    let corrected = {
        let prog = build();
        let w = numa_world(1, PmuConfig::Ibs { period: 64, skid: 3 });
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        let a = run.analyze(&prog);
        // With correction, the memory samples' leaves are the load at
        // line 5.
        let view = top_down(&a, StorageClass::Heap, Metric::Samples, TopDownOpts::default());
        assert!(view.contains("main:5"), "{view}");
        a.class_total(StorageClass::Heap, Metric::Samples)
    };
    let naive = {
        let prog = build();
        let w = numa_world(1, PmuConfig::Ibs { period: 64, skid: 3 });
        let pcfg = ProfilerConfig { skid_correction: false, ..ProfilerConfig::default() };
        let run = run_profiled(&prog, &w, pcfg);
        run.analyze(&prog).class_total(StorageClass::Heap, Metric::Samples)
    };
    // Both profiles classify by EA (same), so heap totals are similar;
    // the difference is *which statement* carries them. Verify naive
    // attribution differs by checking the corrected run found the load
    // statement while sample counts stay comparable.
    assert!(naive > 0 && corrected > 0);
}

/// Freeing and reallocating from a different path re-attributes accesses
/// to the new owner (no stale-map misattribution; §4.1.3's reason for
/// wrapping all frees).
#[test]
fn no_stale_attribution_after_free() {
    let mut b = ProgramBuilder::new("e2e");
    let main = b.proc("main", 0, |p| {
        p.line(3);
        let a = p.malloc(c(1 << 16), "first_owner");
        p.for_(c(0), c(4096), |p, i| {
            p.line(4);
            p.load(l(a), rem(mul(l(i), c(31)), c(8192)), 8);
        });
        p.free(l(a));
        // LIFO reuse: same address range, different allocation site.
        p.line(8);
        let bb = p.malloc(c(1 << 16), "second_owner");
        p.for_(c(0), c(4096), |p, i| {
            p.line(9);
            p.load(l(bb), rem(mul(l(i), c(31)), c(8192)), 8);
        });
        p.free(l(bb));
    });
    let prog = b.build(main);
    let w = numa_world(1, PmuConfig::Ibs { period: 16, skid: 1 });
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let a = run.analyze(&prog);
    let vars = a.variables(Metric::Samples);
    let first = vars.iter().find(|v| v.name == "first_owner").expect("first tracked");
    let second = vars.iter().find(|v| v.name == "second_owner").expect("second tracked");
    // Both owners get their own samples; neither absorbs the other's.
    assert!(first.metrics[Metric::Samples.col()] > 20);
    assert!(second.metrics[Metric::Samples.col()] > 20);
    let ratio = first.metrics[Metric::Samples.col()] as f64
        / second.metrics[Metric::Samples.col()] as f64;
    assert!(ratio > 0.4 && ratio < 2.5, "ratio {ratio}");
}

/// Per-phase wall times and the NumThreads/RankId intrinsics cooperate
/// across a multi-node MPI world.
#[test]
fn multi_node_phases() {
    let mut b = ProgramBuilder::new("e2e");
    let main = b.proc("main", 0, |p| {
        p.phase("work", |p| {
            // Rank-dependent work; barrier aligns.
            p.compute(1000);
            p.if_(Expr::RankId, dcp_runtime::ir::Cmp::Eq, c(0), |p| p.compute(50_000), |_| {});
            p.mpi_barrier();
        });
    });
    let prog = b.build(main);
    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.pmu = None;
    let w = WorldConfig { sim, ranks: 4, ranks_per_node: 2, net: None };
    let (wall, nodes, phases) = dcp_core::run_baseline(&prog, &w);
    assert_eq!(nodes.len(), 2);
    assert!(wall > 50_000);
    assert_eq!(phases.iter().filter(|p| p.name == "work").count(), 4, "one record per rank");
}
