//! Differential analysis across an optimization: profile Streamcluster
//! before and after the parallel first-touch fix and confirm the fix
//! removed exactly the cost it targeted.

use dcp_core::prelude::*;
use dcp_core::view::flat;
use dcp_machine::{MarkedEvent, PmuConfig};
use dcp_workloads::streamcluster::{build, world, ScConfig, ScVariant};

fn profiled(variant: ScVariant) -> (dcp_runtime::Program, dcp_core::ProfiledRun) {
    let cfg = ScConfig::small(variant);
    let prog = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu =
        Some(PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 4, skid: 2 });
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    (prog, run)
}

#[test]
fn fix_shrinks_block_remote_events_in_the_differential() {
    let (prog_b, run_b) = profiled(ScVariant::Original);
    let (prog_a, run_a) = profiled(ScVariant::ParallelFirstTouch);
    let before = run_b.analyze(&prog_b);
    let after = run_a.analyze(&prog_a);

    let block_remote = |a: &dcp_core::Analysis<'_>| {
        a.variables(Metric::Remote)
            .iter()
            .find(|v| v.name == "block")
            .map(|v| v.metrics[Metric::Remote.col()])
            .unwrap_or(0)
    };
    let b = block_remote(&before);
    let a = block_remote(&after);
    assert!(b > 100, "original must show block remote events: {b}");
    assert!(
        (a as f64) < b as f64 * 0.6,
        "fix must cut block's remote events: {b} -> {a}"
    );

    let report = before.compare(&after, Metric::Remote);
    assert!(report.contains("block"), "{report}");
    assert!(report.contains("DELTA"), "{report}");
    // block must be the top mover.
    let first_row = report.lines().nth(2).expect("at least one row");
    assert!(first_row.starts_with("block"), "top mover should be block:\n{report}");
}

#[test]
fn profile_diff_at_tree_level_conserves_totals() {
    let (prog_b, run_b) = profiled(ScVariant::Original);
    let (prog_a, run_a) = profiled(ScVariant::ParallelFirstTouch);
    let before = run_b.analyze(&prog_b);
    let after = run_a.analyze(&prog_a);
    let d = dcp_cct::diff(before.tree(StorageClass::Heap), after.tree(StorageClass::Heap));
    let m = Metric::Remote.col();
    assert_eq!(
        d.total_delta(m),
        after.class_total(StorageClass::Heap, Metric::Remote) as i64
            - before.class_total(StorageClass::Heap, Metric::Remote) as i64
    );
}

#[test]
fn flat_view_surfaces_the_hot_statement() {
    let (prog, run) = profiled(ScVariant::Original);
    let a = run.analyze(&prog);
    let text = flat(&a, StorageClass::Heap, Metric::Remote, 5);
    // The hot coordinate loads live in dist() at line 175.
    assert!(text.contains("dist:175"), "{text}");
}
