//! Sharded scatter-gather differential e2e, on real subprocesses: a
//! `memgaze route` coordinator over `memgaze serve` shard daemons must
//! answer **every** query kind with bytes identical to one daemon that
//! holds every set — for all five Table-1 workloads, while concurrent
//! ingest races the queries, and across a replica SIGKILLed mid-storm.
//!
//! This is the top of the distributed reduction tree under test: ranks
//! fold into shard accumulators, shard partials recombine at the
//! router, and the combiner invariant (`to_bundle`/`restore` is
//! byte-identical mid-stream; `render_view` is pure) says the extra
//! tree level must be invisible in the response bytes.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use dcp_core::prelude::*;
use dcp_core::{bundle_from_measurement, encode_bundle};
use dcp_machine::{MarkedEvent, PmuConfig};
use dcp_serve::Client;
use dcp_support::bytes::Bytes;
use dcp_workloads as wl;

const WORKLOADS: [&str; 5] = ["amg2006", "sweep3d", "lulesh", "streamcluster", "nw"];

/// Profile one Table-1 workload (small config, original variant) and
/// encode one bundle per rank — the same stream `memgaze push` sends.
fn bundles_for(workload: &str) -> Vec<Bytes> {
    let rmem = PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 8, skid: 2 };
    let ibs = PmuConfig::Ibs { period: 128, skid: 2 };
    let (prog, mut world, pmu) = match workload {
        "amg2006" => {
            let cfg = wl::amg2006::AmgConfig::small(wl::amg2006::AmgVariant::Original);
            (wl::amg2006::build(&cfg), wl::amg2006::world(&cfg), rmem)
        }
        "sweep3d" => {
            let cfg = wl::sweep3d::SweepConfig::small(wl::sweep3d::SweepVariant::Original);
            (wl::sweep3d::build(&cfg), wl::sweep3d::world(&cfg), ibs)
        }
        "lulesh" => {
            let cfg = wl::lulesh::LuleshConfig::small(wl::lulesh::LuleshVariant::ORIGINAL);
            (wl::lulesh::build(&cfg), wl::lulesh::world(&cfg), ibs)
        }
        "streamcluster" => {
            let cfg = wl::streamcluster::ScConfig::small(wl::streamcluster::ScVariant::Original);
            (wl::streamcluster::build(&cfg), wl::streamcluster::world(&cfg), rmem)
        }
        "nw" => {
            let cfg = wl::nw::NwConfig::small(wl::nw::NwVariant::Original);
            (wl::nw::build(&cfg), wl::nw::world(&cfg), rmem)
        }
        other => panic!("unknown workload {other}"),
    };
    world.sim.pmu = Some(pmu);
    let run = run_profiled(&prog, &world, ProfilerConfig::default());
    run.measurements
        .iter()
        .map(|m| encode_bundle(&bundle_from_measurement(&prog, m)))
        .collect()
}

/// Every query kind over `sets`: ranking, topdown, bottomup, flat,
/// vars, export, cross-set diff, and the `sets` listing itself.
fn battery(sets: &[&str]) -> Vec<String> {
    let mut q: Vec<String> = vec!["sets".into()];
    for (i, s) in sets.iter().enumerate() {
        q.push(format!("ranking {s} latency 8"));
        q.push(format!("ranking {s} samples"));
        q.push(format!("topdown {s} heap remote"));
        q.push(format!("topdown {s} static samples"));
        q.push(format!("bottomup {s} samples"));
        q.push(format!("flat {s} heap samples 8"));
        q.push(format!("vars {s} samples"));
        q.push(format!("export {s} heap"));
        q.push(format!("export {s} static"));
        q.push(format!("diff {s} {} remote", sets[(i + 1) % sets.len()]));
    }
    q
}

/// Spawn a subprocess and read its stdout until the `<tag> <addr>`
/// banner appears.
fn spawn_banner(mut cmd: Command, tag: &str) -> (Child, String) {
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read stdout") == 0 {
            panic!("process exited before printing {tag:?}");
        }
        if let Some(a) = line.trim().strip_prefix(tag) {
            break a.to_string();
        }
    };
    (child, addr)
}

/// `memgaze serve` on an ephemeral port, memory-only.
fn spawn_shard() -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_memgaze"));
    cmd.args(["serve", "--addr", "127.0.0.1:0"]);
    spawn_banner(cmd, "serving on ")
}

/// `memgaze route` over the given shard groups (comma-joined replicas).
fn spawn_router(groups: &[Vec<String>]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_memgaze"));
    cmd.args(["route", "--addr", "127.0.0.1:0"]);
    for g in groups {
        cmd.args(["--shard", &g.join(",")]);
    }
    spawn_banner(cmd, "routing on ")
}

fn drain(addr: &str, mut child: Child, what: &str) {
    Client::connect(addr).expect(what).shutdown().expect(what);
    let status = child.wait().expect(what);
    assert!(status.success(), "{what}: clean drain must exit 0");
}

#[test]
fn three_shard_cluster_is_byte_identical_to_one_daemon_under_racing_ingest() {
    let per_set: HashMap<&str, Vec<Bytes>> =
        WORKLOADS.iter().map(|w| (*w, bundles_for(w))).collect();

    let shards: Vec<(Child, String)> = (0..3).map(|_| spawn_shard()).collect();
    let groups: Vec<Vec<String>> = shards.iter().map(|(_, a)| vec![a.clone()]).collect();
    let (router_child, router_addr) = spawn_router(&groups);
    let (golden_child, golden_addr) = spawn_shard();

    // Seed the five stable sets through both endpoints; acks must match
    // bundle for bundle (the router relays the owning shard's ack).
    let mut rcl = Client::connect(&router_addr).expect("connect router");
    let mut gcl = Client::connect(&golden_addr).expect("connect golden");
    for w in WORKLOADS {
        for (i, blob) in per_set[w].iter().enumerate() {
            let routed = rcl.ingest(w, Some(i as u64), blob.clone()).expect("routed ingest");
            let golden = gcl.ingest(w, Some(i as u64), blob.clone()).expect("golden ingest");
            assert_eq!(routed, golden, "ingest ack for {w}#{i} differs");
        }
    }

    // Racing ingest: a writer streams replicas of the same profiles
    // into fresh `raced-*` sets through the router while the full query
    // battery runs against the stable sets. The stable responses must
    // not waver by a byte while the cluster is hot.
    let writer = {
        let addr = router_addr.clone();
        let per_set = per_set.clone();
        std::thread::spawn(move || {
            let mut cl = Client::connect(&addr).expect("writer connect");
            for round in 0..3u64 {
                for w in WORKLOADS {
                    let bundles = &per_set[w];
                    for (i, blob) in bundles.iter().enumerate() {
                        let seq = round * bundles.len() as u64 + i as u64;
                        cl.ingest(&format!("raced-{w}"), Some(seq), blob.clone())
                            .expect("raced ingest");
                    }
                }
            }
        })
    };
    let stable = battery(&WORKLOADS);
    for pass in 0..2 {
        for q in &stable {
            let routed = rcl.query(q).expect("routed query");
            let golden = gcl.query(q).expect("golden query");
            if q == "sets" {
                // The listing legitimately differs mid-race (raced-*
                // sets exist only on the cluster so far); it is
                // compared after the race settles below.
                continue;
            }
            assert_eq!(routed, golden, "pass {pass}: {q:?} diverges under racing ingest");
        }
    }
    writer.join().expect("writer");

    // Feed the golden the raced sets and compare everything, including
    // the raced sets and the full listing, at quiescence.
    for round in 0..3u64 {
        for w in WORKLOADS {
            let bundles = &per_set[w];
            for (i, blob) in bundles.iter().enumerate() {
                let seq = round * bundles.len() as u64 + i as u64;
                gcl.ingest(&format!("raced-{w}"), Some(seq), blob.clone()).expect("golden raced");
            }
        }
    }
    let raced: Vec<String> = WORKLOADS.iter().map(|w| format!("raced-{w}")).collect();
    let raced_refs: Vec<&str> = raced.iter().map(String::as_str).collect();
    for q in battery(&WORKLOADS).iter().chain(battery(&raced_refs).iter()) {
        let routed = rcl.query(q).expect("routed query");
        let golden = gcl.query(q).expect("golden query");
        assert_eq!(routed, golden, "{q:?} diverges at quiescence");
    }
    let stats = rcl.stats().expect("router stats");
    assert!(stats.contains("shards 3"), "{stats}");
    assert!(stats.contains("shard_unreachable 0"), "{stats}");
    assert!(stats.contains("ring_mismatch 0"), "{stats}");
    assert!(stats.contains("partial_merge 0"), "{stats}");

    drop(rcl);
    drop(gcl);
    drain(&router_addr, router_child, "drain router");
    for (child, addr) in shards {
        drain(&addr, child, "drain shard");
    }
    drain(&golden_addr, golden_child, "drain golden");
}

#[test]
fn sigkill_one_replica_mid_storm_serves_byte_identical_to_the_uncrashed_golden() {
    let bundles = bundles_for("nw");

    // One shard group, two replicas; the router fans ingest to both, so
    // either replica alone can serve the set.
    let (victim_child, victim_addr) = spawn_shard();
    let (survivor_child, survivor_addr) = spawn_shard();
    let (router_child, router_addr) =
        spawn_router(&[vec![victim_addr.clone(), survivor_addr.clone()]]);
    let (golden_child, golden_addr) = spawn_shard();

    let mut rcl = Client::connect(&router_addr).expect("connect router");
    let mut gcl = Client::connect(&golden_addr).expect("connect golden");
    for (i, blob) in bundles.iter().enumerate() {
        rcl.ingest("nw", Some(i as u64), blob.clone()).expect("routed ingest");
        gcl.ingest("nw", Some(i as u64), blob.clone()).expect("golden ingest");
    }

    // Golden answers, captured up front; the storm compares against
    // these fixed bytes before, across, and after the kill.
    let storm = battery(&["nw"]);
    let golden: Vec<(String, String)> = storm
        .iter()
        .map(|q| (q.clone(), gcl.query(q).expect("golden query")))
        .collect();

    let mut victim = Some(victim_child);
    let rounds = 30usize;
    let kill_at = 10usize;
    let mut after_kill = 0usize;
    for round in 0..rounds {
        if round == kill_at {
            let mut child = victim.take().expect("victim still tracked");
            child.kill().expect("SIGKILL victim replica");
            child.wait().expect("reap victim");
        }
        for (q, want) in &golden {
            let got = rcl.query(q).expect("routed query during storm");
            assert_eq!(&got, want, "round {round}: {q:?} changed across the replica kill");
            if victim.is_none() {
                after_kill += 1;
            }
        }
    }
    assert!(after_kill > 0, "storm must keep querying after the kill");

    // Writes keep working through the surviving replica, and the ack
    // matches the golden's byte for byte.
    let blob = bundles[0].clone();
    let routed =
        rcl.ingest("nw", Some(bundles.len() as u64), blob.clone()).expect("post-kill ingest");
    let golden_ack =
        gcl.ingest("nw", Some(bundles.len() as u64), blob).expect("golden post-kill ingest");
    assert_eq!(routed, golden_ack, "post-kill ingest ack differs");

    // The router saw real failovers and no unreachable shard.
    let stats = rcl.stats().expect("stats");
    let retries: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("retries "))
        .expect("retries line")
        .parse()
        .expect("retries number");
    assert!(retries > 0, "the kill must surface as replica retries: {stats}");
    assert!(stats.contains("shard_unreachable 0"), "{stats}");

    drop(rcl);
    drop(gcl);
    drain(&router_addr, router_child, "drain router");
    drain(&survivor_addr, survivor_child, "drain survivor");
    drain(&golden_addr, golden_child, "drain golden");
}
