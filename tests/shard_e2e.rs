//! Sharded scatter-gather differential e2e, on real subprocesses: a
//! `memgaze route` coordinator over `memgaze serve` shard daemons must
//! answer **every** query kind with bytes identical to one daemon that
//! holds every set — for all five Table-1 workloads, while concurrent
//! ingest races the queries, and across a replica SIGKILLed mid-storm.
//!
//! This is the top of the distributed reduction tree under test: ranks
//! fold into shard accumulators, shard partials recombine at the
//! router, and the combiner invariant (`to_bundle`/`restore` is
//! byte-identical mid-stream; `render_view` is pure) says the extra
//! tree level must be invisible in the response bytes.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};

use dcp_core::prelude::*;
use dcp_core::{bundle_from_measurement, encode_bundle};
use dcp_machine::{MarkedEvent, PmuConfig};
use dcp_serve::Client;
use dcp_support::bytes::Bytes;
use dcp_workloads as wl;

const WORKLOADS: [&str; 5] = ["amg2006", "sweep3d", "lulesh", "streamcluster", "nw"];

/// Profile one Table-1 workload (small config, original variant) and
/// encode one bundle per rank — the same stream `memgaze push` sends.
fn bundles_for(workload: &str) -> Vec<Bytes> {
    let rmem = PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 8, skid: 2 };
    let ibs = PmuConfig::Ibs { period: 128, skid: 2 };
    let (prog, mut world, pmu) = match workload {
        "amg2006" => {
            let cfg = wl::amg2006::AmgConfig::small(wl::amg2006::AmgVariant::Original);
            (wl::amg2006::build(&cfg), wl::amg2006::world(&cfg), rmem)
        }
        "sweep3d" => {
            let cfg = wl::sweep3d::SweepConfig::small(wl::sweep3d::SweepVariant::Original);
            (wl::sweep3d::build(&cfg), wl::sweep3d::world(&cfg), ibs)
        }
        "lulesh" => {
            let cfg = wl::lulesh::LuleshConfig::small(wl::lulesh::LuleshVariant::ORIGINAL);
            (wl::lulesh::build(&cfg), wl::lulesh::world(&cfg), ibs)
        }
        "streamcluster" => {
            let cfg = wl::streamcluster::ScConfig::small(wl::streamcluster::ScVariant::Original);
            (wl::streamcluster::build(&cfg), wl::streamcluster::world(&cfg), rmem)
        }
        "nw" => {
            let cfg = wl::nw::NwConfig::small(wl::nw::NwVariant::Original);
            (wl::nw::build(&cfg), wl::nw::world(&cfg), rmem)
        }
        other => panic!("unknown workload {other}"),
    };
    world.sim.pmu = Some(pmu);
    let run = run_profiled(&prog, &world, ProfilerConfig::default());
    run.measurements
        .iter()
        .map(|m| encode_bundle(&bundle_from_measurement(&prog, m)))
        .collect()
}

/// Every query kind over `sets`: ranking, topdown, bottomup, flat,
/// vars, export, cross-set diff, and the `sets` listing itself.
fn battery(sets: &[&str]) -> Vec<String> {
    let mut q: Vec<String> = vec!["sets".into()];
    for (i, s) in sets.iter().enumerate() {
        q.push(format!("ranking {s} latency 8"));
        q.push(format!("ranking {s} samples"));
        q.push(format!("topdown {s} heap remote"));
        q.push(format!("topdown {s} static samples"));
        q.push(format!("bottomup {s} samples"));
        q.push(format!("flat {s} heap samples 8"));
        q.push(format!("vars {s} samples"));
        q.push(format!("export {s} heap"));
        q.push(format!("export {s} static"));
        q.push(format!("diff {s} {} remote", sets[(i + 1) % sets.len()]));
    }
    q
}

/// Spawn a subprocess and read its stdout until the `<tag> <addr>`
/// banner appears.
fn spawn_banner(mut cmd: Command, tag: &str) -> (Child, String) {
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read stdout") == 0 {
            panic!("process exited before printing {tag:?}");
        }
        if let Some(a) = line.trim().strip_prefix(tag) {
            break a.to_string();
        }
    };
    (child, addr)
}

/// `memgaze serve` on an ephemeral port, memory-only.
fn spawn_shard() -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_memgaze"));
    cmd.args(["serve", "--addr", "127.0.0.1:0"]);
    spawn_banner(cmd, "serving on ")
}

/// `memgaze serve --data-dir` on an ephemeral port; returns the
/// `recovered …` banner line too (empty on a fresh directory).
fn spawn_durable_shard(dir: &Path) -> (Child, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_memgaze"));
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--data-dir", dir.to_str().expect("utf8 dir")]);
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn durable shard");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let mut recovery = String::new();
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read stdout") == 0 {
            panic!("durable shard exited before binding");
        }
        match line.trim().strip_prefix("serving on ") {
            Some(a) => break a.to_string(),
            None => recovery = line.trim().to_string(),
        }
    };
    (child, addr, recovery)
}

/// `memgaze route` over the given shard groups (comma-joined replicas).
fn spawn_router(groups: &[Vec<String>]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_memgaze"));
    cmd.args(["route", "--addr", "127.0.0.1:0"]);
    for g in groups {
        cmd.args(["--shard", &g.join(",")]);
    }
    spawn_banner(cmd, "routing on ")
}

fn drain(addr: &str, mut child: Child, what: &str) {
    Client::connect(addr).expect(what).shutdown().expect(what);
    let status = child.wait().expect(what);
    assert!(status.success(), "{what}: clean drain must exit 0");
}

#[test]
fn three_shard_cluster_is_byte_identical_to_one_daemon_under_racing_ingest() {
    let per_set: HashMap<&str, Vec<Bytes>> =
        WORKLOADS.iter().map(|w| (*w, bundles_for(w))).collect();

    let shards: Vec<(Child, String)> = (0..3).map(|_| spawn_shard()).collect();
    let groups: Vec<Vec<String>> = shards.iter().map(|(_, a)| vec![a.clone()]).collect();
    let (router_child, router_addr) = spawn_router(&groups);
    let (golden_child, golden_addr) = spawn_shard();

    // Seed the five stable sets through both endpoints; acks must match
    // bundle for bundle (the router relays the owning shard's ack).
    let mut rcl = Client::connect(&router_addr).expect("connect router");
    let mut gcl = Client::connect(&golden_addr).expect("connect golden");
    for w in WORKLOADS {
        for (i, blob) in per_set[w].iter().enumerate() {
            let routed = rcl.ingest(w, Some(i as u64), blob.clone()).expect("routed ingest");
            let golden = gcl.ingest(w, Some(i as u64), blob.clone()).expect("golden ingest");
            assert_eq!(routed, golden, "ingest ack for {w}#{i} differs");
        }
    }

    // Racing ingest: a writer streams replicas of the same profiles
    // into fresh `raced-*` sets through the router while the full query
    // battery runs against the stable sets. The stable responses must
    // not waver by a byte while the cluster is hot.
    let writer = {
        let addr = router_addr.clone();
        let per_set = per_set.clone();
        std::thread::spawn(move || {
            let mut cl = Client::connect(&addr).expect("writer connect");
            for round in 0..3u64 {
                for w in WORKLOADS {
                    let bundles = &per_set[w];
                    for (i, blob) in bundles.iter().enumerate() {
                        let seq = round * bundles.len() as u64 + i as u64;
                        cl.ingest(&format!("raced-{w}"), Some(seq), blob.clone())
                            .expect("raced ingest");
                    }
                }
            }
        })
    };
    let stable = battery(&WORKLOADS);
    for pass in 0..2 {
        for q in &stable {
            let routed = rcl.query(q).expect("routed query");
            let golden = gcl.query(q).expect("golden query");
            if q == "sets" {
                // The listing legitimately differs mid-race (raced-*
                // sets exist only on the cluster so far); it is
                // compared after the race settles below.
                continue;
            }
            assert_eq!(routed, golden, "pass {pass}: {q:?} diverges under racing ingest");
        }
    }
    writer.join().expect("writer");

    // Feed the golden the raced sets and compare everything, including
    // the raced sets and the full listing, at quiescence.
    for round in 0..3u64 {
        for w in WORKLOADS {
            let bundles = &per_set[w];
            for (i, blob) in bundles.iter().enumerate() {
                let seq = round * bundles.len() as u64 + i as u64;
                gcl.ingest(&format!("raced-{w}"), Some(seq), blob.clone()).expect("golden raced");
            }
        }
    }
    let raced: Vec<String> = WORKLOADS.iter().map(|w| format!("raced-{w}")).collect();
    let raced_refs: Vec<&str> = raced.iter().map(String::as_str).collect();
    for q in battery(&WORKLOADS).iter().chain(battery(&raced_refs).iter()) {
        let routed = rcl.query(q).expect("routed query");
        let golden = gcl.query(q).expect("golden query");
        assert_eq!(routed, golden, "{q:?} diverges at quiescence");
    }
    let stats = rcl.stats().expect("router stats");
    assert!(stats.contains("shards 3"), "{stats}");
    assert!(stats.contains("shard_unreachable 0"), "{stats}");
    assert!(stats.contains("ring_mismatch 0"), "{stats}");
    assert!(stats.contains("partial_merge 0"), "{stats}");

    drop(rcl);
    drop(gcl);
    drain(&router_addr, router_child, "drain router");
    for (child, addr) in shards {
        drain(&addr, child, "drain shard");
    }
    drain(&golden_addr, golden_child, "drain golden");
}

#[test]
fn sigkill_one_replica_mid_storm_serves_byte_identical_to_the_uncrashed_golden() {
    let bundles = bundles_for("nw");

    // One shard group, two replicas; the router fans ingest to both, so
    // either replica alone can serve the set.
    let (victim_child, victim_addr) = spawn_shard();
    let (survivor_child, survivor_addr) = spawn_shard();
    let (router_child, router_addr) =
        spawn_router(&[vec![victim_addr.clone(), survivor_addr.clone()]]);
    let (golden_child, golden_addr) = spawn_shard();

    let mut rcl = Client::connect(&router_addr).expect("connect router");
    let mut gcl = Client::connect(&golden_addr).expect("connect golden");
    for (i, blob) in bundles.iter().enumerate() {
        rcl.ingest("nw", Some(i as u64), blob.clone()).expect("routed ingest");
        gcl.ingest("nw", Some(i as u64), blob.clone()).expect("golden ingest");
    }

    // Golden answers, captured up front; the storm compares against
    // these fixed bytes before, across, and after the kill.
    let storm = battery(&["nw"]);
    let golden: Vec<(String, String)> = storm
        .iter()
        .map(|q| (q.clone(), gcl.query(q).expect("golden query")))
        .collect();

    let mut victim = Some(victim_child);
    let rounds = 30usize;
    let kill_at = 10usize;
    let mut after_kill = 0usize;
    for round in 0..rounds {
        if round == kill_at {
            let mut child = victim.take().expect("victim still tracked");
            child.kill().expect("SIGKILL victim replica");
            child.wait().expect("reap victim");
        }
        for (q, want) in &golden {
            let got = rcl.query(q).expect("routed query during storm");
            assert_eq!(&got, want, "round {round}: {q:?} changed across the replica kill");
            if victim.is_none() {
                after_kill += 1;
            }
        }
    }
    assert!(after_kill > 0, "storm must keep querying after the kill");

    // Writes keep working through the surviving replica, and the ack
    // matches the golden's byte for byte.
    let blob = bundles[0].clone();
    let routed =
        rcl.ingest("nw", Some(bundles.len() as u64), blob.clone()).expect("post-kill ingest");
    let golden_ack =
        gcl.ingest("nw", Some(bundles.len() as u64), blob).expect("golden post-kill ingest");
    assert_eq!(routed, golden_ack, "post-kill ingest ack differs");

    // The router saw real failovers and no unreachable shard.
    let stats = rcl.stats().expect("stats");
    let retries: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("retries "))
        .expect("retries line")
        .parse()
        .expect("retries number");
    assert!(retries > 0, "the kill must surface as replica retries: {stats}");
    assert!(stats.contains("shard_unreachable 0"), "{stats}");

    drop(rcl);
    drop(gcl);
    drain(&router_addr, router_child, "drain router");
    drain(&survivor_addr, survivor_child, "drain survivor");
    drain(&golden_addr, golden_child, "drain golden");
}

/// Durability × sharding cross-product: a WAL-backed replica is
/// SIGKILLed while pipelined ingest streams through the router, the
/// stream finishes over the surviving memory replica, and the victim
/// is then restarted over its data directory and healed by re-pushing
/// the full stream (the recovered prefix answers `DuplicateSeq`). At
/// no point — mid-kill, post-failover, or post-heal, routed or direct
/// — may the cluster's answers differ by a byte from an uncrashed
/// golden daemon fed the same stream.
#[test]
fn sigkilled_durable_replica_restarts_and_heals_byte_identical() {
    let bundles = bundles_for("nw");
    // Replay the bundle list with distinct seqs so the WAL is long
    // enough to leave the victim genuinely behind at the kill.
    let stream: Vec<Bytes> =
        bundles.iter().cycle().take(bundles.len() * 6).cloned().collect();
    let kill_at = stream.len() / 2;

    let base = std::env::temp_dir().join(format!("dcp-shard-heal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dir = base.join("victim");

    // One shard group: durable victim A + memory survivor B behind R1.
    let (victim_child, victim_addr, _) = spawn_durable_shard(&dir);
    let (survivor_child, survivor_addr) = spawn_shard();
    let (r1_child, r1_addr) = spawn_router(&[vec![victim_addr.clone(), survivor_addr.clone()]]);
    let (golden_child, golden_addr) = spawn_shard();

    let mut gcl = Client::connect(&golden_addr).expect("connect golden");
    for (i, blob) in stream.iter().enumerate() {
        gcl.ingest("nw", Some(i as u64), blob.clone()).expect("golden ingest");
    }
    let storm = battery(&["nw"]);
    let golden: Vec<(String, String)> = storm
        .iter()
        .map(|q| (q.clone(), gcl.query(q).expect("golden query")))
        .collect();

    // Pipelined ingest through R1; SIGKILL the durable replica with
    // the window still in flight. Every ack must stay a clean accept —
    // the survivor covers the dead replica without the client noticing.
    let mut rcl = Client::connect(&r1_addr).expect("connect router");
    let mut victim = Some(victim_child);
    let mut pipe = rcl.pipeline(4);
    for (i, blob) in stream.iter().enumerate() {
        if i == kill_at {
            let mut child = victim.take().expect("victim still tracked");
            child.kill().expect("SIGKILL durable replica");
            child.wait().expect("reap victim");
        }
        if let Some(ack) = pipe.push("nw", Some(i as u64), blob.clone()).expect("routed push") {
            ack.expect("routed ingest refused");
        }
    }
    for ack in pipe.drain().expect("drain routed pipeline") {
        ack.expect("routed ingest refused");
    }
    assert!(victim.is_none(), "the kill point must lie inside the stream");

    // The cluster never wavers after the failover, and the router saw
    // the kill as replica retries, not an unreachable shard.
    for (q, want) in &golden {
        let got = rcl.query(q).expect("routed query post-kill");
        assert_eq!(&got, want, "{q:?} diverges after the replica kill");
    }
    let stats = rcl.stats().expect("router stats");
    let retries: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("retries "))
        .expect("retries line")
        .parse()
        .expect("retries number");
    assert!(retries > 0, "the kill must surface as replica retries: {stats}");
    assert!(stats.contains("shard_unreachable 0"), "{stats}");
    drop(rcl);
    drain(&r1_addr, r1_child, "drain first router");

    // Restart the victim over the same directory — on a fresh port, so
    // the old address's TIME_WAIT state is irrelevant — and front the
    // healed pair with a new router.
    let (victim2_child, victim2_addr, recovery) = spawn_durable_shard(&dir);
    assert!(
        recovery.starts_with("recovered "),
        "restarted replica must report recovery, got {recovery:?}"
    );
    let (r2_child, r2_addr) = spawn_router(&[vec![victim2_addr.clone(), survivor_addr.clone()]]);
    let mut rcl = Client::connect(&r2_addr).expect("connect second router");

    // Heal: re-push the full stream. The restarted replica accepts what
    // it lost; anything both replicas already hold comes back as the
    // relayed DuplicateSeq refusal.
    let dup = dcp_serve::ServeError::DuplicateSeq(0).code();
    let mut healed = 0usize;
    for (i, blob) in stream.iter().enumerate() {
        match rcl.ingest("nw", Some(i as u64), blob.clone()) {
            Ok(_) => healed += 1,
            Err(e) if e.code() == dup => {}
            Err(e) => panic!("heal re-push nw#{i}: {e}"),
        }
    }
    assert!(healed > 0, "the restarted replica must have been missing the suffix");

    // Post-heal: repeated routed rounds and the restarted replica
    // queried directly must all serve the golden bytes.
    let mut vcl = Client::connect(&victim2_addr).expect("connect restarted replica");
    for round in 0..5 {
        for (q, want) in &golden {
            let routed = rcl.query(q).expect("routed query post-heal");
            assert_eq!(&routed, want, "round {round}: {q:?} diverges post-heal");
            let direct = vcl.query(q).expect("direct query post-heal");
            assert_eq!(&direct, want, "round {round}: {q:?} diverges on the healed replica");
        }
    }

    drop(rcl);
    drop(gcl);
    drop(vcl);
    drain(&r2_addr, r2_child, "drain second router");
    drain(&victim2_addr, victim2_child, "drain healed replica");
    drain(&survivor_addr, survivor_child, "drain survivor");
    drain(&golden_addr, golden_child, "drain golden");
    let _ = std::fs::remove_dir_all(&base);
}
