//! The §2.2/§6.2 space argument, measured against a *real* trace
//! implementation: run the same execution under the compact profiler and
//! under a MemProf-style trace collector and compare data volumes and
//! scaling behaviour.

use dcp_core::prelude::*;
use dcp_core::TraceCollector;
use dcp_machine::{MachineConfig, PmuConfig};
use dcp_runtime::ir::ex::*;
use dcp_runtime::{run_world, Program, ProgramBuilder, SimConfig, WorldConfig};

fn program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new("space");
    let region = b.outlined("work", 2, |p| {
        let (buf, n) = (p.param(0), p.param(1));
        p.omp_for(c(0), l(n), |p, i| {
            p.line(30);
            p.load(l(buf), mul(l(i), c(16)), 8);
        });
    });
    let main = b.proc("main", 0, |p| {
        let buf = p.calloc(c(128 * 8192), "data");
        p.for_(c(0), c(iters), |p, _| {
            p.parallel(region, vec![l(buf), c(8192)]);
        });
        p.free(l(buf));
    });
    b.build(main)
}

fn world() -> WorldConfig {
    let mut sim = SimConfig::new(MachineConfig::power7_node());
    sim.omp_threads = 16;
    sim.pmu = Some(PmuConfig::Ibs { period: 48, skid: 2 });
    WorldConfig::single_node(sim, 1)
}

#[test]
fn profile_is_much_smaller_than_trace_for_the_same_run() {
    let prog = program(4);
    let w = world();
    let profiled = run_profiled(&prog, &w, ProfilerConfig::default());
    let traced = run_world(&prog, &w, |_| TraceCollector::new()).unwrap();
    let trace_bytes: usize = traced.observers.iter().map(|t| t.trace_bytes()).sum();
    let (samples, ..) = traced.observers[0].counts();
    assert!(samples > 1_000, "need volume: {samples}");
    assert!(
        profiled.profile_bytes * 10 < trace_bytes,
        "profile {} must be far below trace {}",
        profiled.profile_bytes,
        trace_bytes
    );
}

#[test]
fn trace_grows_with_time_profile_does_not() {
    // 4x the execution: the trace ~4x's, the profile stays flat (same
    // calling contexts).
    let w = world();
    let (p1, p4) = (program(2), program(8));
    let prof_small = run_profiled(&p1, &w, ProfilerConfig::default()).profile_bytes;
    let prof_large = run_profiled(&p4, &w, ProfilerConfig::default()).profile_bytes;
    let trace_small: usize = run_world(&p1, &w, |_| TraceCollector::new()).unwrap()
        .observers
        .iter()
        .map(|t| t.trace_bytes())
        .sum();
    let trace_large: usize = run_world(&p4, &w, |_| TraceCollector::new()).unwrap()
        .observers
        .iter()
        .map(|t| t.trace_bytes())
        .sum();
    assert!(
        trace_large as f64 > 2.5 * trace_small as f64,
        "trace must grow with time: {trace_small} -> {trace_large}"
    );
    assert!(
        (prof_large as f64) < 1.5 * prof_small as f64,
        "profile must stay near-flat: {prof_small} -> {prof_large}"
    );
}
