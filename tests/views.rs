//! Integration tests of the presentation views against a program with
//! known structure: the rendered text must contain the right names,
//! groupings and percentages.

use dcp_core::prelude::*;
use dcp_machine::{MachineConfig, PmuConfig};
use dcp_runtime::ir::ex::*;
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};

/// Two variables allocated through the same wrapper from different call
/// sites, plus one static — exercises every view.
fn program() -> Program {
    let mut b = ProgramBuilder::new("views");
    let table = b.static_array("big_table", 1 << 18);
    let wrapper = b.declare("xmalloc", 1);
    b.define(wrapper, |p| {
        p.line(99);
        let ptr = p.malloc(l(p.param(0)), "");
        p.ret(Some(l(ptr)));
    });
    let main = b.proc("main", 0, |p| {
        p.line(10);
        let a = p.call_ret_hint(wrapper, vec![c(1 << 18)], "alpha");
        p.line(11);
        let bb = p.call_ret_hint(wrapper, vec![c(1 << 18)], "beta");
        p.for_(c(0), c(24_000), |p, i| {
            let scat = rem(mul(l(i), c(179)), c(1 << 15));
            p.line(20);
            p.load(l(a), scat.clone(), 8);
            p.line(21);
            p.load(l(a), rem(mul(l(i), c(67)), c(1 << 15)), 8);
            p.line(22);
            p.load(l(bb), scat.clone(), 8);
            p.line(23);
            p.load(c(table as i64), scat, 8);
        });
        p.free(l(a));
        p.free(l(bb));
    });
    b.build(main)
}

fn analyzed() -> (Program, u64) {
    let prog = program();
    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.pmu = Some(PmuConfig::Ibs { period: 40, skid: 2 });
    let w = WorldConfig::single_node(sim, 1);
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let samples = run.stats.samples;
    // Leak the measurements into the analysis by re-running analyze in
    // each test; cheaper: return the samples and let tests rebuild.
    (prog, samples)
}

#[test]
fn ranking_names_all_variables() {
    let (prog, _) = analyzed();
    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.pmu = Some(PmuConfig::Ibs { period: 40, skid: 2 });
    let w = WorldConfig::single_node(sim, 1);
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let a = run.analyze(&prog);
    let text = ranking(&a, Metric::Latency, 10);
    for name in ["alpha", "beta", "big_table", "heap data", "static data"] {
        assert!(text.contains(name), "ranking missing {name}:\n{text}");
    }
    // alpha is read twice as often as beta: it must rank first among
    // heap variables.
    let vars = a.variables(Metric::Samples);
    let heap: Vec<_> = vars.iter().filter(|v| v.class == StorageClass::Heap).collect();
    assert_eq!(heap[0].name, "alpha");
    let r = heap[0].metrics[Metric::Samples.col()] as f64
        / heap[1].metrics[Metric::Samples.col()] as f64;
    assert!(r > 1.4 && r < 2.9, "alpha:beta sample ratio {r}");
}

#[test]
fn topdown_shows_alloc_path_then_marker_then_accesses() {
    let (prog, _) = analyzed();
    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.pmu = Some(PmuConfig::Ibs { period: 40, skid: 2 });
    let w = WorldConfig::single_node(sim, 1);
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let a = run.analyze(&prog);
    let text = top_down(
        &a,
        StorageClass::Heap,
        Metric::Samples,
        TopDownOpts { max_depth: 10, min_pct: 1.0, max_children: 6 },
    );
    // Allocation call path (main:10 -> xmalloc:99), the dummy node, then
    // the access sites.
    assert!(text.contains("main:10"), "{text}");
    assert!(text.contains("xmalloc:99"), "{text}");
    assert!(text.contains("heap data accesses"), "{text}");
    assert!(text.contains("main:20") || text.contains("main:21"), "{text}");
    // The marker line's position: alloc path appears before the marker.
    let alloc_pos = text.find("xmalloc:99").unwrap();
    let marker_pos = text.find("heap data accesses").unwrap();
    assert!(alloc_pos < marker_pos);
}

#[test]
fn bottomup_groups_by_wrapper_call_site() {
    let (prog, _) = analyzed();
    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.pmu = Some(PmuConfig::Ibs { period: 40, skid: 2 });
    let w = WorldConfig::single_node(sim, 1);
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let a = run.analyze(&prog);
    let text = bottom_up(&a, Metric::Samples);
    // Two rows: the two call sites of xmalloc in main.
    assert!(text.contains("main:10"), "{text}");
    assert!(text.contains("main:11"), "{text}");
    assert!(text.contains("alpha"), "{text}");
    assert!(text.contains("beta"), "{text}");
}

#[test]
fn breakdown_percentages_sum_to_100() {
    let (prog, _) = analyzed();
    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.pmu = Some(PmuConfig::Ibs { period: 40, skid: 2 });
    let w = WorldConfig::single_node(sim, 1);
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let a = run.analyze(&prog);
    let total: f64 = storage_breakdown(&a, Metric::Samples).iter().map(|(_, _, p)| p).sum();
    assert!((total - 100.0).abs() < 1e-6, "breakdown sums to {total}");
}
