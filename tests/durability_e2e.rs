//! Kill-anywhere crash-injection differential: a durable daemon is
//! aborted after every possible write-ahead-log append (clean kills and
//! torn final writes), restarted over the same data directory, finished
//! off, and must then answer every query with bytes identical to a
//! never-crashed golden store fed the same bundles — for all five
//! Table-1 workloads at once.
//!
//! The daemon runs as a real subprocess (`memgaze serve --data-dir …`)
//! so `process::abort` kills a real OS process mid-fsync-sequence; the
//! crash point is injected via the `DCP_WAL_CRASH_AFTER` /
//! `DCP_WAL_CRASH_MODE` hooks the WAL reads at open. The stream is
//! pushed through a 4-deep pipelined window, so the daemon's
//! group-commit batcher folds neighbouring appends into shared fsyncs
//! and the sweep's kill points land both **inside** a batch (records
//! after the crash record are lost wholesale) and **between a group's
//! fsync and its acks** (durable-but-unacknowledged records the replay
//! must keep and the re-push must refuse as duplicates). Two
//! invariants per kill point:
//!
//! 1. **Acked implies durable**: every ingest acknowledged before the
//!    kill is present after recovery (epoch per set ≥ acks per set).
//! 2. **Byte-identical completion**: re-pushing the full stream (the
//!    already-durable prefix answers `DuplicateSeq`) yields query
//!    responses equal to the uncrashed golden, byte for byte.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use dcp_core::prelude::*;
use dcp_core::{bundle_from_measurement, encode_bundle};
use dcp_machine::{MarkedEvent, PmuConfig};
use dcp_serve::{handle_query, Client, ProfileStore, ServeError, StoreConfig};
use dcp_support::bytes::Bytes;
use dcp_workloads as wl;

const WORKLOADS: [&str; 5] = ["amg2006", "sweep3d", "lulesh", "streamcluster", "nw"];

/// Profile one Table-1 workload (small config, original variant) and
/// encode one bundle per rank — the same stream `memgaze push` sends.
fn bundles_for(workload: &str) -> Vec<Bytes> {
    let rmem = PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 8, skid: 2 };
    let ibs = PmuConfig::Ibs { period: 128, skid: 2 };
    let (prog, mut world, pmu) = match workload {
        "amg2006" => {
            let cfg = wl::amg2006::AmgConfig::small(wl::amg2006::AmgVariant::Original);
            (wl::amg2006::build(&cfg), wl::amg2006::world(&cfg), rmem)
        }
        "sweep3d" => {
            let cfg = wl::sweep3d::SweepConfig::small(wl::sweep3d::SweepVariant::Original);
            (wl::sweep3d::build(&cfg), wl::sweep3d::world(&cfg), ibs)
        }
        "lulesh" => {
            let cfg = wl::lulesh::LuleshConfig::small(wl::lulesh::LuleshVariant::ORIGINAL);
            (wl::lulesh::build(&cfg), wl::lulesh::world(&cfg), ibs)
        }
        "streamcluster" => {
            let cfg = wl::streamcluster::ScConfig::small(wl::streamcluster::ScVariant::Original);
            (wl::streamcluster::build(&cfg), wl::streamcluster::world(&cfg), rmem)
        }
        "nw" => {
            let cfg = wl::nw::NwConfig::small(wl::nw::NwVariant::Original);
            (wl::nw::build(&cfg), wl::nw::world(&cfg), rmem)
        }
        other => panic!("unknown workload {other}"),
    };
    world.sim.pmu = Some(pmu);
    let run = run_profiled(&prog, &world, ProfilerConfig::default());
    run.measurements
        .iter()
        .map(|m| encode_bundle(&bundle_from_measurement(&prog, m)))
        .collect()
}

/// One query of every substantive kind over the five sets, plus a
/// cross-set diff and the live `sets` listing.
fn queries() -> Vec<String> {
    let mut q: Vec<String> = vec!["sets".into(), "diff nw streamcluster remote".into()];
    for w in WORKLOADS {
        q.push(format!("export {w} heap"));
        q.push(format!("ranking {w} latency 8"));
        q.push(format!("vars {w} samples"));
    }
    q
}

fn spawn_daemon(
    dir: &Path,
    snapshot_every: u64,
    crash_after: Option<u64>,
    torn: bool,
) -> (Child, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_memgaze"));
    cmd.args([
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--data-dir",
        dir.to_str().expect("utf8 dir"),
        "--snapshot-every",
        &snapshot_every.to_string(),
    ]);
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    cmd.env_remove("DCP_WAL_CRASH_AFTER").env_remove("DCP_WAL_CRASH_MODE");
    if let Some(n) = crash_after {
        cmd.env("DCP_WAL_CRASH_AFTER", n.to_string());
        if torn {
            cmd.env("DCP_WAL_CRASH_MODE", "torn");
        }
    }
    let mut child = cmd.spawn().expect("spawn daemon");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let mut recovery = String::new();
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read stdout") == 0 {
            panic!("daemon exited before binding");
        }
        match line.trim().strip_prefix("serving on ") {
            Some(a) => break a.to_string(),
            None => recovery = line.trim().to_string(),
        }
    };
    (child, addr, recovery)
}

/// Push the stream through a 4-deep pipelined window until the daemon
/// dies (or the stream ends), so group-commit batches form at the kill
/// point. Returns acks per set — only acks actually read back count;
/// every one of them must survive the crash.
fn push_until_death(addr: &str, stream: &[(&'static str, u64, Bytes)]) -> HashMap<String, u64> {
    let mut acked: HashMap<String, u64> = HashMap::new();
    let mut acks_read = 0usize;
    let Ok(mut client) = Client::connect(addr) else {
        return acked;
    };
    let mut pipe = client.pipeline(4);
    let mut alive = true;
    for (set, seq, blob) in stream {
        match pipe.push(set, Some(*seq), blob.clone()) {
            Ok(Some(ack)) => {
                acks_read += 1;
                if let Ok(a) = ack {
                    *acked.entry(a.set).or_default() += 1;
                }
            }
            Ok(None) => {}
            Err(_) => {
                alive = false;
                break;
            }
        }
    }
    if alive {
        match pipe.drain() {
            Ok(acks) => {
                for a in acks.into_iter().flatten() {
                    *acked.entry(a.set).or_default() += 1;
                }
                return acked;
            }
            Err(_) => {} // died while the trailing window drained
        }
    }
    // The kill may have only torn this connection — and either way the
    // trailing window's acks were never read. One reconnect, resuming
    // serially from the first item whose ack is unread; a DuplicateSeq
    // refusal proves that item was durable before the crash but was
    // never acknowledged, so it still does not count.
    let Ok(mut client) = Client::connect(addr) else {
        return acked;
    };
    for (set, seq, blob) in &stream[acks_read..] {
        match client.ingest(set, Some(*seq), blob.clone()) {
            Ok(_) => *acked.entry(set.to_string()).or_default() += 1,
            Err(e) if e.code() == ServeError::DuplicateSeq(0).code() => {}
            Err(_) => break, // daemon is gone
        }
    }
    acked
}

fn epochs_of(sets_response: &str) -> HashMap<String, u64> {
    // Lines look like: `name bundles=N epoch=E gap=G gap_bytes=B`.
    sets_response
        .lines()
        .filter_map(|l| {
            let mut words = l.split_whitespace();
            let name = words.next()?;
            let epoch = words.find_map(|w| w.strip_prefix("epoch="))?;
            Some((name.to_string(), epoch.parse().ok()?))
        })
        .collect()
}

#[test]
fn killed_anywhere_recovers_byte_identical_to_the_uncrashed_golden() {
    // The interleaved ingest stream: round-robin across the five sets,
    // client-assigned sequence numbers in order within each set.
    // Each small config yields only a rank or two; replay every set's
    // measurement list three times (distinct seqs) so the WAL is long
    // enough to put kill points in every snapshot window.
    let per_set: Vec<(&'static str, Vec<Bytes>)> = WORKLOADS
        .iter()
        .map(|w| {
            let once = bundles_for(w);
            let thrice: Vec<Bytes> =
                once.iter().cycle().take(once.len() * 3).cloned().collect();
            (*w, thrice)
        })
        .collect();
    let mut stream: Vec<(&'static str, u64, Bytes)> = Vec::new();
    let widest = per_set.iter().map(|(_, b)| b.len()).max().expect("sets");
    for i in 0..widest {
        for (set, bundles) in &per_set {
            if let Some(b) = bundles.get(i) {
                stream.push((set, i as u64, b.clone()));
            }
        }
    }
    let total = stream.len() as u64;
    assert!(total >= 10, "need a real sweep, got {total} appends");

    // The uncrashed golden: an in-process store fed the same stream.
    let mut golden = ProfileStore::new(StoreConfig::default());
    for (set, seq, blob) in &stream {
        let bundle = dcp_core::stored::decode_bundle(blob.clone()).expect("bundle");
        golden.ingest(set, Some(*seq), blob.len() as u64, bundle).expect("golden ingest");
    }
    let golden_responses: Vec<(String, String)> = queries()
        .into_iter()
        .map(|q| {
            let r = handle_query(&mut golden, &q).expect("golden query");
            (q, r)
        })
        .collect();

    // Kill points: after every append (clean), and a torn final write
    // at every third point. snapshot_every=3 lands kills in every
    // snapshot window: before the first, between snapshot and truncate
    // coverage, and on the log tail after the latest snapshot.
    let mut kill_points: Vec<(u64, bool)> = (1..=total).map(|n| (n, false)).collect();
    kill_points.extend((1..=total).step_by(3).map(|n| (n, true)));

    let base = std::env::temp_dir().join(format!("dcp-kill-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for (n, torn) in kill_points {
        let dir: PathBuf = base.join(format!("n{n}{}", if torn { "-torn" } else { "" }));

        // Phase 1: daemon wired to abort at append n; push until it dies.
        let (mut child, addr, _) = spawn_daemon(&dir, 3, Some(n), torn);
        let acked = push_until_death(&addr, &stream);
        let status = child.wait().expect("wait crashed daemon");
        assert!(!status.success(), "kill point {n} (torn={torn}): daemon must have aborted");

        // Phase 2: restart over the same directory, no crash hooks.
        let (mut child, addr, recovery) = spawn_daemon(&dir, 3, None, false);
        assert!(
            recovery.starts_with("recovered "),
            "kill point {n} (torn={torn}): missing recovery report, got {recovery:?}"
        );
        let mut client = Client::connect(&addr).expect("connect recovered daemon");

        // Invariant 1: acked implies durable.
        let epochs = epochs_of(&client.query("sets").expect("sets"));
        for (set, acks) in &acked {
            let epoch = epochs.get(set).copied().unwrap_or(0);
            assert!(
                epoch >= *acks,
                "kill point {n} (torn={torn}): set {set} acked {acks} but recovered epoch {epoch}"
            );
        }

        // Finish the stream; the durable prefix answers DuplicateSeq.
        for (set, seq, blob) in &stream {
            match client.ingest(set, Some(*seq), blob.clone()) {
                Ok(_) => {}
                Err(e) if e.code() == ServeError::DuplicateSeq(0).code() => {}
                Err(e) => panic!("kill point {n} (torn={torn}): re-push {set}#{seq}: {e}"),
            }
        }

        // Invariant 2: byte-identical to the uncrashed golden.
        for (q, want) in &golden_responses {
            let got = client.query(q).expect("query recovered daemon");
            assert_eq!(
                &got, want,
                "kill point {n} (torn={torn}): {q:?} diverges from the uncrashed golden"
            );
        }
        client.shutdown().expect("shutdown");
        drop(client);
        let status = child.wait().expect("wait recovered daemon");
        assert!(status.success(), "kill point {n} (torn={torn}): clean drain must exit 0");
    }
    let _ = std::fs::remove_dir_all(&base);
}
