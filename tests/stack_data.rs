//! Integration tests of the stack-data extension (the paper's §7
//! future-work item): thread-stack accesses get their own storage class
//! when `stack_class` is on, and fall into unknown data when the
//! profiler is configured paper-faithfully.

use dcp_core::prelude::*;
use dcp_machine::{MachineConfig, PmuConfig};
use dcp_runtime::ir::ex::*;
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};

fn program() -> Program {
    let mut b = ProgramBuilder::new("stacky");
    let kernel = b.proc("kernel", 1, |p| {
        let heap = p.param(0);
        // A sizable local working array — scattered accesses so they miss.
        let local = p.stack_alloc(c(1 << 17));
        p.for_(c(0), c(20_000), |p, i| {
            let scat = rem(mul(l(i), c(127)), c(1 << 14));
            p.line(30);
            p.store(l(local), scat.clone(), 8);
            p.line(31);
            p.load(l(heap), scat, 8);
        });
        p.ret(None);
    });
    let main = b.proc("main", 0, |p| {
        let heap = p.malloc(c(1 << 17), "heap_buf");
        p.call(kernel, vec![l(heap)]);
        p.free(l(heap));
    });
    b.build(main)
}

fn run(stack_class: bool) -> (u64, u64, u64) {
    let prog = program();
    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.pmu = Some(PmuConfig::Ibs { period: 64, skid: 2 });
    let w = WorldConfig::single_node(sim, 1);
    let pcfg = ProfilerConfig { stack_class, ..ProfilerConfig::default() };
    let run = run_profiled(&prog, &w, pcfg);
    let a = run.analyze(&prog);
    (
        a.class_total(StorageClass::Stack, Metric::Samples),
        a.class_total(StorageClass::Unknown, Metric::Samples),
        a.class_total(StorageClass::Heap, Metric::Samples),
    )
}

#[test]
fn stack_accesses_get_their_own_class() {
    let (stack, unknown, heap) = run(true);
    assert!(stack > 50, "stack samples: {stack}");
    assert!(heap > 50, "heap samples: {heap}");
    // The kernel's stack and heap accesses are 1:1; samples should be
    // in the same ballpark.
    let ratio = stack as f64 / heap as f64;
    assert!(ratio > 0.4 && ratio < 2.5, "stack:heap {ratio}");
    assert_eq!(unknown, 0, "nothing else is untracked in this program");
}

#[test]
fn paper_mode_folds_stack_into_unknown() {
    let (stack, unknown, _) = run(false);
    assert_eq!(stack, 0, "paper-faithful mode has no stack class");
    assert!(unknown > 50, "stack samples fall into unknown: {unknown}");
}

#[test]
fn stack_class_appears_in_views() {
    let prog = program();
    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.pmu = Some(PmuConfig::Ibs { period: 64, skid: 2 });
    let w = WorldConfig::single_node(sim, 1);
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let a = run.analyze(&prog);
    let text = ranking(&a, Metric::Samples, 8);
    assert!(text.contains("stack data"), "{text}");
    let breakdown = storage_breakdown(&a, Metric::Samples);
    let total: f64 = breakdown.iter().map(|(_, _, p)| p).sum();
    assert!((total - 100.0).abs() < 1e-6);
}
