//! Integration tests of the measurement→serialization→merge pipeline on
//! real profiler output (not synthetic trees).

use dcp_cct::{decode, encode, encode_v1, merge_encoded, merge_reduction_tree};
use dcp_core::prelude::*;
use dcp_core::MeasurementData;
use dcp_machine::{MachineConfig, PmuConfig};
use dcp_runtime::ir::ex::*;
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};

fn program() -> Program {
    let mut b = ProgramBuilder::new("pipe");
    let region = b.outlined("work", 2, |p| {
        let (buf, len) = (p.param(0), p.param(1));
        p.omp_for(c(0), l(len), |p, i| {
            p.line(30);
            p.load(l(buf), mul(l(i), c(16)), 8);
            p.compute(2);
        });
    });
    let main = b.proc("main", 0, |p| {
        let buf = p.calloc(c(128 * 8192), "data");
        p.parallel(region, vec![l(buf), c(8192)]);
        p.free(l(buf));
    });
    b.build(main)
}

fn run() -> (u64, Vec<MeasurementData>) {
    let prog = program();
    let mut sim = SimConfig::new(MachineConfig::power7_node());
    sim.omp_threads = 16;
    sim.pmu = Some(PmuConfig::Ibs { period: 48, skid: 2 });
    let w = WorldConfig::single_node(sim, 1);
    let r = run_profiled(&prog, &w, ProfilerConfig::default());
    (r.stats.samples, r.measurements)
}

#[test]
fn real_profiles_roundtrip_through_codec() {
    let (_, measurements) = run();
    let mut trees = 0;
    for m in &measurements {
        for class in &m.profiles {
            for tree in class {
                let bytes = encode(tree);
                let back = decode(bytes).expect("decodes");
                assert_eq!(tree.canonical(), back.canonical());
                trees += 1;
            }
        }
    }
    assert!(trees >= 4, "expected several per-thread trees, got {trees}");
}

#[test]
fn merge_conserves_real_metrics() {
    let (samples, measurements) = run();
    // Flatten all heap trees and merge; totals must survive.
    let heap_trees: Vec<_> =
        measurements.into_iter().flat_map(|mut m| std::mem::take(&mut m.profiles[1])).collect();
    let per_tree_samples: u64 = heap_trees.iter().map(|t| t.total(0)).sum();
    let per_tree_latency: u64 = heap_trees.iter().map(|t| t.total(1)).sum();
    let merged = merge_reduction_tree(heap_trees, dcp_core::METRIC_WIDTH);
    assert_eq!(merged.total(0), per_tree_samples);
    assert_eq!(merged.total(1), per_tree_latency);
    assert!(per_tree_samples <= samples);
    assert!(per_tree_samples > 0);
}

#[test]
fn profiled_runs_are_deterministic() {
    let (s1, m1) = run();
    let (s2, m2) = run();
    assert_eq!(s1, s2, "sample counts must match run to run");
    // Thread-by-thread canonical equality of the heap trees.
    let canon = |ms: &[MeasurementData]| -> Vec<_> {
        ms.iter()
            .flat_map(|m| m.profiles[1].iter())
            .map(|t| t.canonical())
            .collect::<Vec<_>>()
    };
    assert_eq!(canon(&m1), canon(&m2));
}

#[test]
fn merged_profile_is_compact() {
    // Per-thread profiles of the same parallel region coalesce: the
    // merged tree must be far smaller than the concatenation (the §2.2
    // scalability argument).
    let (_, measurements) = run();
    let heap_trees: Vec<_> =
        measurements.into_iter().flat_map(|mut m| std::mem::take(&mut m.profiles[1])).collect();
    let n_trees = heap_trees.len();
    let sum_nodes: usize = heap_trees.iter().map(|t| t.len()).sum();
    let merged = merge_reduction_tree(heap_trees, dcp_core::METRIC_WIDTH);
    assert!(n_trees >= 8);
    assert!(
        merged.len() * (n_trees / 2) < sum_nodes,
        "merged {} nodes vs {} total across {} trees",
        merged.len(),
        sum_nodes,
        n_trees
    );
}

#[test]
fn v2_profiles_are_smaller_and_v1_still_decodes() {
    let (_, measurements) = run();
    let mut v1_total = 0usize;
    let mut v2_total = 0usize;
    for m in &measurements {
        for class in &m.profiles {
            for tree in class {
                let v1 = encode_v1(tree);
                let v2 = encode(tree);
                // Size comparison over trees with actual content; on
                // near-empty trees both formats are a fixed-size header.
                if tree.len() >= 8 {
                    v2_total += v2.len();
                    v1_total += v1.len();
                }
                // Backward compatibility: the legacy format decodes to
                // the same tree as the compact one.
                let from_v1 = decode(v1).expect("v1 decodes");
                let from_v2 = decode(v2).expect("v2 decodes");
                assert_eq!(from_v1.canonical(), from_v2.canonical());
            }
        }
    }
    assert!(v1_total > 0, "expected non-trivial per-thread trees");
    assert!(
        v2_total * 10 <= v1_total * 7,
        "v2 ({v2_total} B) must be well under v1 ({v1_total} B) on real profiles"
    );
}

#[test]
fn streamed_merge_of_real_profiles_is_byte_identical() {
    let (_, measurements) = run();
    let heap_trees: Vec<_> =
        measurements.into_iter().flat_map(|mut m| std::mem::take(&mut m.profiles[1])).collect();
    let blobs: Vec<_> = heap_trees.iter().map(encode).collect();
    let in_mem = merge_reduction_tree(heap_trees, dcp_core::METRIC_WIDTH);
    let streamed = merge_encoded(blobs, dcp_core::METRIC_WIDTH).expect("valid profiles");
    assert_eq!(encode(&streamed), encode(&in_mem));
}

#[test]
fn streamed_analysis_matches_in_memory_analysis() {
    // End-to-end: profile → encode (with names) → stream-merge → analyze
    // must be observably identical to the all-in-memory path.
    let prog = program();
    let mut sim = SimConfig::new(MachineConfig::power7_node());
    sim.omp_threads = 16;
    sim.pmu = Some(PmuConfig::Ibs { period: 48, skid: 2 });
    let w = WorldConfig::single_node(sim, 1);

    let direct = run_profiled(&prog, &w, ProfilerConfig::default()).analyze(&prog);
    let streamed = run_profiled(&prog, &w, ProfilerConfig::default())
        .analyze_streamed(&prog)
        .expect("freshly encoded profiles are valid");

    let dv = direct.variables(Metric::Latency);
    let sv = streamed.variables(Metric::Latency);
    assert!(!dv.is_empty());
    assert_eq!(dv.len(), sv.len());
    for (d, s) in dv.iter().zip(&sv) {
        assert_eq!(d.name, s.name);
        assert_eq!(d.metrics, s.metrics);
        assert_eq!(d.alloc_count, s.alloc_count);
        assert_eq!(d.alloc_site, s.alloc_site);
    }
    for &c in StorageClass::ALL.iter() {
        assert_eq!(direct.tree(c).canonical(), streamed.tree(c).canonical());
    }
}

#[test]
fn profile_bytes_scale_sublinearly_with_work() {
    // 4x the work must not produce anywhere near 4x the profile bytes —
    // profiles grow with distinct contexts, not with execution length.
    let size_for = |iters: i64| {
        let mut b = ProgramBuilder::new("pipe");
        let main = b.proc("main", 0, |p| {
            let buf = p.calloc(c(1 << 18), "data");
            p.for_(c(0), c(iters), |p, i| {
                p.line(9);
                p.load(l(buf), rem(mul(l(i), c(61)), c(1 << 15)), 8);
            });
            p.free(l(buf));
        });
        let prog = b.build(main);
        let mut sim = SimConfig::new(MachineConfig::magny_cours());
        sim.pmu = Some(PmuConfig::Ibs { period: 32, skid: 1 });
        let w = WorldConfig::single_node(sim, 1);
        run_profiled(&prog, &w, ProfilerConfig::default()).profile_bytes
    };
    let small = size_for(10_000);
    let large = size_for(40_000);
    assert!(large < small * 2, "profile bytes {small} -> {large} must stay compact");
}
